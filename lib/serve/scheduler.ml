(* Request scheduler: the concurrent heart of the serving runtime.

   One mutex guards the bounded queue, the completion table and every
   counter; workers and submitters meet only here.  Two conditions:
   [nonempty] wakes workers when work (or shutdown) arrives, [done_cond]
   wakes waiters when an outcome lands.

   The OCaml stdlib has no timed condition wait, so the batching window
   is enforced by a wake pipe + timeout: a worker that sees pending-but-
   not-yet-dispatchable work parks in [Unix.select] on the pipe's read
   end with a fraction of the window ([poll_s]) as the timeout, while a
   worker that sees an empty queue blocks on [nonempty] and costs
   nothing.  The timeout (max_wait/4 clamped to [50us, 200us]) bounds
   how late a window EXPIRY can be noticed; queue EVENTS don't wait for
   it - a submission that fills a batch to [max_batch], a drain, and
   shutdown each write one byte to the pipe and the select returns
   immediately, so a full batch dispatches the moment it forms instead
   of up to a poll tick later.

   Admission control is synchronous: [submit] either admits (the caller
   will find an outcome under the request id) or returns the structured
   overload immediately - a refused request never occupies queue space
   and never has a dangling outcome entry.  Deadline shedding is
   asynchronous: expired requests are removed at dispatch time and
   completed as [Overloaded Deadline_exceeded].

   Supervision hooks (this file's share of the fault-tolerance story):

   - Completion is idempotent, first-wins.  Wedge recovery can steal a
     batch from a stalled worker and re-execute it; if the original
     worker later finishes too, the second completion is counted as a
     duplicate and dropped, so [outstanding] can never double-decrement
     and an already-delivered outcome is never overwritten.

   - [requeue] re-admits a request from a failed batch, bypassing
     admission control (the request is already admitted and counted in
     [outstanding]); retried requests sit in a dedicated FIFO that
     dispatch drains first, one request per solo batch, so a poisoned
     batchmate can't sink them twice.

   - A per-model circuit breaker trips after [breaker_threshold]
     consecutive batch failures.  While open, that model's submissions
     and queued requests resolve fast as [Overloaded Breaker_open]
     instead of burning workers on a plan that keeps failing; after
     [breaker_cooldown_us] the next request is admitted as a half-open
     probe, and its batch result closes or re-opens the breaker. *)

open Astitch_obs
module Rq = Queue

type batch = {
  model : string;
  requests : Request.t list;
      (** FIFO, length in [1, max_batch]; executed at exactly this
          size - nothing is padded *)
}

type breaker_state = [ `Closed | `Open | `Half_open ]

let breaker_state_to_string = function
  | `Closed -> "closed"
  | `Open -> "open"
  | `Half_open -> "half-open"

type breaker = {
  mutable bstate : breaker_state;
  mutable consec : int;  (** consecutive batch failures while closed *)
  mutable open_until : float;  (** wall-clock us; probe after this *)
}

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  done_cond : Condition.t;
  queue : Request.t Rq.t;
  (* SLO mode (multi-tenant zoo): per-model class assignments drive
     class-priority + EDF dispatch, a fair-share floor, and
     displacement shedding.  Empty [slos] = legacy single-tenant
     behavior, byte-for-byte (oldest-head FIFO across models). *)
  slos : (string, Slo.t) Hashtbl.t;
  slo_mode : bool;
  floor_period : int;
      (** every [floor_period]-th dispatch goes to the least-served
          model instead of the highest class - the fair-share floor *)
  served : (string, int) Hashtbl.t;  (** dispatches per model *)
  mutable dispatches : int;
  retries : Request.t Stdlib.Queue.t;
      (** failed-batch requests awaiting solo re-dispatch *)
  resolved : (int, unit) Hashtbl.t;
      (** ids whose outcome already landed - makes completion
          first-wins under wedge-steal double execution *)
  breakers : (string, breaker) Hashtbl.t;
  breaker_threshold : int;  (** consecutive failures to open; 0 = off *)
  breaker_cooldown_us : float;
  policy : Batcher.policy;
  poll_s : float;
  wake_r : Unix.file_descr;  (** self-pipe read end: select target *)
  wake_w : Unix.file_descr;  (** write one byte = wake a parked worker *)
  mutable disposed : bool;  (** wake pipe closed; select no longer legal *)
  outcomes : (int, Request.outcome) Hashtbl.t;
  mutable outstanding : int;  (** admitted, outcome not yet recorded *)
  mutable draining : bool;
  mutable stopped : bool;
  mutable submitted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable shed_admission : int;
      (** refused at submit: deadline already past on arrival *)
  mutable displaced : int;
      (** queued lower-class requests evicted for higher-class arrivals *)
  mutable floor_picks : int;  (** dispatches taken by the fair-share floor *)
  mutable completed : int;
  mutable failed : int;
  mutable degraded : int;
  mutable batches : int;
  mutable retried : int;
  mutable duplicates : int;
  mutable breaker_opens : int;
  mutable breaker_closes : int;
  (* obs: published so `serve --metrics` and the smoke test see the
     runtime from the outside *)
  m_depth : Metrics.gauge;
  m_submitted : Metrics.counter;
  m_rejected : Metrics.counter;
  m_shed : Metrics.counter;
  m_completed : Metrics.counter;
  m_failed : Metrics.counter;
  m_degraded : Metrics.counter;
  m_wait_us : Metrics.histogram;
  m_retried : Metrics.counter;
  m_duplicate : Metrics.counter;
  m_breaker_open : Metrics.counter;
  m_breaker_close : Metrics.counter;
  m_shed_admission : Metrics.counter;
  m_displaced : Metrics.counter;
}

let create ?(breaker_threshold = 4) ?(breaker_cooldown_us = 5_000.)
    ?(slos = []) ?(fair_share_floor = 0.125) ~policy ~queue_depth () =
  let r = Metrics.default in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let slo_table = Hashtbl.create 8 in
  List.iter (fun (m, s) -> Hashtbl.replace slo_table m s) slos;
  if fair_share_floor < 0. || fair_share_floor > 0.5 then
    invalid_arg "Scheduler.create: fair_share_floor must be in [0, 0.5]";
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    done_cond = Condition.create ();
    queue = Rq.create ~depth:queue_depth;
    slos = slo_table;
    slo_mode = slos <> [];
    (* floor share f reserves every round(1/f)-th dispatch; f = 0
       disables the floor (pure strict priority). *)
    floor_period =
      (if fair_share_floor <= 0. then 0
       else max 2 (int_of_float (Float.round (1. /. fair_share_floor))));
    served = Hashtbl.create 8;
    dispatches = 0;
    retries = Stdlib.Queue.create ();
    resolved = Hashtbl.create 64;
    breakers = Hashtbl.create 8;
    breaker_threshold;
    breaker_cooldown_us;
    policy;
    poll_s = 1e-6 *. Batcher.poll_interval_us policy;
    wake_r;
    wake_w;
    disposed = false;
    outcomes = Hashtbl.create 64;
    outstanding = 0;
    draining = false;
    stopped = false;
    submitted = 0;
    rejected = 0;
    shed = 0;
    shed_admission = 0;
    displaced = 0;
    floor_picks = 0;
    completed = 0;
    failed = 0;
    degraded = 0;
    batches = 0;
    retried = 0;
    duplicates = 0;
    breaker_opens = 0;
    breaker_closes = 0;
    m_depth = Metrics.gauge r "serve.queue_depth";
    m_submitted = Metrics.counter r "serve.submitted";
    m_rejected = Metrics.counter r "serve.rejected";
    m_shed = Metrics.counter r "serve.shed";
    m_completed = Metrics.counter r "serve.completed";
    m_failed = Metrics.counter r "serve.failed";
    m_degraded = Metrics.counter r "serve.degraded";
    m_wait_us = Metrics.histogram r "serve.queue_wait_us";
    m_retried = Metrics.counter r "serve.retry";
    m_duplicate = Metrics.counter r "serve.duplicate";
    m_breaker_open = Metrics.counter r "serve.breaker_open";
    m_breaker_close = Metrics.counter r "serve.breaker_close";
    m_shed_admission = Metrics.counter r "serve.shed_admission";
    m_displaced = Metrics.counter r "serve.displaced";
  }

let now_us () = Unix.gettimeofday () *. 1e6

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let publish_depth t = Metrics.set t.m_depth (float_of_int (Rq.length t.queue))

(* --- Wake pipe ---------------------------------------------------------- *)

(* Nudge every worker parked in [wait_poll]: one byte down the
   self-pipe.  Non-blocking and best-effort - a full pipe means wakes
   are already queued, which is all a level-triggered select needs. *)
let wake t =
  if not t.disposed then
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

(* Park for at most one poll tick, or until someone writes the wake
   pipe.  Called WITHOUT the scheduler lock.  Readable bytes are
   drained so a single event doesn't turn every later wait into a spin;
   with several parked workers one drains and the rest time out, which
   is correct (spurious wakeups are fine, missed ones are not - and a
   wake written after the drain leaves a byte for the next select). *)
let wait_poll t =
  if t.disposed then ()
  else begin
    (try ignore (Unix.select [ t.wake_r ] [] [] t.poll_s)
     with Unix.Unix_error ((EINTR | EBADF), _, _) -> ());
    let buf = Bytes.create 64 in
    let rec drain () =
      match Unix.read t.wake_r buf 0 64 with
      | 64 -> drain ()
      | _ -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF), _, _) -> ()
    in
    drain ()
  end

(* Close the wake pipe.  Call only after the worker pool has joined -
   no one may be parked in [wait_poll] when the fds die. *)
let dispose t =
  locked t (fun () ->
      if not t.disposed then begin
        t.disposed <- true;
        (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
        try Unix.close t.wake_w with Unix.Unix_error _ -> ()
      end)

let outcome_label = function
  | Request.Done { degraded = false; _ } -> "done"
  | Request.Done { degraded = true; _ } -> "done-degraded"
  | Request.Overloaded o -> Request.overload_to_string o
  | Request.Failed _ -> "failed"

(* Record an outcome under the scheduler lock and wake waiters.
   First-wins: wedge recovery may steal and re-execute a batch whose
   original worker eventually finishes too, so the same id can complete
   twice.  The first outcome is the one delivered; later attempts are
   counted as duplicates and dropped without touching [outstanding].
   The winning completion terminates the request's flow arrow ("f"), so
   every admitted flow ends exactly once whatever path resolved it. *)
let complete_locked t (req : Request.t) outcome =
  if Hashtbl.mem t.resolved req.id then begin
    t.duplicates <- t.duplicates + 1;
    Metrics.inc t.m_duplicate
  end
  else begin
    Hashtbl.replace t.resolved req.id ();
    (match outcome with
    | Request.Done { degraded; _ } ->
        t.completed <- t.completed + 1;
        if degraded then t.degraded <- t.degraded + 1;
        Metrics.inc t.m_completed;
        if degraded then Metrics.inc t.m_degraded
    | Request.Overloaded _ ->
        t.shed <- t.shed + 1;
        Metrics.inc t.m_shed
    | Request.Failed _ ->
        t.failed <- t.failed + 1;
        Metrics.inc t.m_failed);
    if Trace.active () then
      Trace.flow_end ~phase:"serve" req.trace "request"
        ~attrs:
          [
            ("id", Trace.Int req.id);
            ("outcome", Trace.Str (outcome_label outcome));
          ];
    Hashtbl.replace t.outcomes req.id outcome;
    t.outstanding <- t.outstanding - 1;
    Condition.broadcast t.done_cond
  end

let complete t req outcome = locked t (fun () -> complete_locked t req outcome)

(* --- Circuit breaker --------------------------------------------------- *)

let breaker_for t model =
  match Hashtbl.find_opt t.breakers model with
  | Some b -> b
  | None ->
      let b = { bstate = `Closed; consec = 0; open_until = 0. } in
      Hashtbl.replace t.breakers model b;
      b

let breaker_instant model transition =
  if Trace.active () then
    Trace.instant ~phase:"serve"
      ("breaker-" ^ transition)
      ~attrs:[ ("model", Trace.Str model) ]

let open_breaker_locked t model (b : breaker) =
  b.bstate <- `Open;
  b.open_until <- now_us () +. t.breaker_cooldown_us;
  t.breaker_opens <- t.breaker_opens + 1;
  Metrics.inc t.m_breaker_open;
  breaker_instant model "open";
  if Trace.active () then
    ignore
      (Flight.incident ~reason:"breaker-open"
         ~attrs:[ ("model", Trace.Str model) ]
         ())

(* Every batch result feeds the model's breaker: a success closes it
   (from half-open or even open - the worker proved the plan serves),
   a failure opened-from-closed after [breaker_threshold] consecutive
   misses, and a failed half-open probe re-opens for another cooldown. *)
let note_batch_result t ~model ~ok =
  locked t (fun () ->
      if t.breaker_threshold > 0 then begin
        let b = breaker_for t model in
        if ok then begin
          if b.bstate <> `Closed then begin
            b.bstate <- `Closed;
            t.breaker_closes <- t.breaker_closes + 1;
            Metrics.inc t.m_breaker_close;
            breaker_instant model "close"
          end;
          b.consec <- 0
        end
        else begin
          b.consec <- b.consec + 1;
          match b.bstate with
          | `Half_open -> open_breaker_locked t model b
          | `Closed when b.consec >= t.breaker_threshold ->
              open_breaker_locked t model b
          | `Open | `Closed -> ()
        end
      end)

let breaker_state t model =
  locked t (fun () ->
      match Hashtbl.find_opt t.breakers model with
      | None -> `Closed
      | Some b -> b.bstate)

(* Under the lock: an open breaker past its cooldown moves to half-open
   (the next admitted/queued request becomes the probe).  Returns the
   state after any transition. *)
let breaker_tick_locked (b : breaker) ~now =
  if b.bstate = `Open && now >= b.open_until then b.bstate <- `Half_open;
  b.bstate

(* The SLO class a model was registered with; unregistered models (and
   all models outside slo_mode) are best-effort. *)
let slo_of t model =
  match Hashtbl.find_opt t.slos model with
  | Some s -> s
  | None -> Slo.Best_effort

(* Displacement shedding: the queue is full and a request of a strictly
   higher class (lower rank) wants in.  Evict the NEWEST queued request
   of the LOWEST class present that ranks strictly below the arrival -
   newest because, FIFO, it would be served last of its class anyway,
   so the displacement costs the minimum already-accrued waiting.  The
   evicted request was admitted, so it completes through the normal
   path as [Overloaded Displaced]; the submitter sees a structured shed,
   never silence.  Returns whether a slot was freed. *)
let displace_locked t ~for_rank =
  let victim =
    List.fold_left
      (fun acc model ->
        let r = Slo.rank (slo_of t model) in
        if r <= for_rank then acc
        else
          match Rq.newest t.queue ~model with
          | None -> acc
          | Some (cand : Request.t) -> (
              match acc with
              | Some (best_r, best_sub, _)
                when best_r > r
                     || (best_r = r && best_sub >= cand.submitted_us) ->
                  acc
              | _ -> Some (r, cand.submitted_us, model)))
      None (Rq.models t.queue)
  in
  match victim with
  | None -> false
  | Some (_, _, model) -> (
      match Rq.pop_newest t.queue ~model with
      | None -> false
      | Some evicted ->
          t.displaced <- t.displaced + 1;
          Metrics.inc t.m_displaced;
          if Trace.active () then
            Trace.instant ~phase:"serve" "displaced"
              ~attrs:
                [
                  ("model", Trace.Str evicted.Request.model);
                  ("id", Trace.Int evicted.Request.id);
                ];
          complete_locked t evicted (Request.Overloaded Request.Displaced);
          true)

let submit t (req : Request.t) =
  locked t (fun () ->
      let broken =
        t.breaker_threshold > 0
        &&
        match Hashtbl.find_opt t.breakers req.model with
        | None -> false
        | Some b -> breaker_tick_locked b ~now:(now_us ()) = `Open
      in
      if t.stopped || t.draining then begin
        t.rejected <- t.rejected + 1;
        Metrics.inc t.m_rejected;
        Error Request.Shutting_down
      end
      else if broken then begin
        t.rejected <- t.rejected + 1;
        Metrics.inc t.m_rejected;
        Error Request.Breaker_open
      end
      else if Request.expired ~now_us:(now_us ()) req then begin
        (* Dead on arrival: refuse at admission instead of letting the
           corpse occupy queue space until dispatch-time shedding.  A
           refusal never increments [submitted]/[outstanding], so it is
           accounted as a rejection (keeping the disposition ledger's
           lost = 0 invariant) and separately as [shed_admission]; the
           obs shed counter ticks too, with this distinct reason
           visible as [serve.shed_admission]. *)
        t.rejected <- t.rejected + 1;
        t.shed_admission <- t.shed_admission + 1;
        Metrics.inc t.m_rejected;
        Metrics.inc t.m_shed;
        Metrics.inc t.m_shed_admission;
        if Trace.active () then
          Trace.instant ~phase:"serve" "shed-admission"
            ~attrs:
              [
                ("model", Trace.Str req.model); ("id", Trace.Int req.id);
              ];
        Error Request.Deadline_exceeded
      end
      else if
        not
          (Rq.push t.queue ~model:req.model req
          || t.slo_mode
             && displace_locked t ~for_rank:(Slo.rank (slo_of t req.model))
             && Rq.push t.queue ~model:req.model req)
      then begin
        t.rejected <- t.rejected + 1;
        Metrics.inc t.m_rejected;
        Error Request.Queue_full
      end
      else begin
        t.submitted <- t.submitted + 1;
        t.outstanding <- t.outstanding + 1;
        Metrics.inc t.m_submitted;
        publish_depth t;
        Condition.signal t.nonempty;
        (* A batch just reached [max_batch]: workers parked on an open
           window should dispatch NOW, not a poll tick from now. *)
        if Rq.pending t.queue ~model:req.model >= Batcher.max_batch t.policy
        then wake t;
        Ok ()
      end)

(* Shed every queued request past its deadline; their outcome is the
   structured overload, never a silent drop. *)
let shed_expired_locked t =
  let now = now_us () in
  let dead = Rq.remove_if t.queue (Request.expired ~now_us:now) in
  List.iter
    (fun (r : Request.t) ->
      complete_locked t r (Request.Overloaded Request.Deadline_exceeded))
    dead;
  if dead <> [] then publish_depth t

(* Under the lock: find the dispatchable model whose head request is the
   oldest (global FIFO fairness across models).  Legacy single-tenant
   policy, kept bit-identical when no SLOs are registered. *)
let pick_fifo_locked t =
  let now = now_us () in
  let draining = t.draining || t.stopped in
  List.fold_left
    (fun best model ->
      match Rq.oldest t.queue ~model with
      | None -> best
      | Some (head : Request.t) -> (
          let pending = Rq.pending t.queue ~model in
          let wait = now -. head.submitted_us in
          match Batcher.decide t.policy ~pending ~oldest_wait_us:wait ~draining with
          | Batcher.Wait -> best
          | Batcher.Dispatch n -> (
              match best with
              | Some (_, _, best_sub) when best_sub <= head.submitted_us -> best
              | _ -> Some (model, n, head.submitted_us))))
    None (Rq.models t.queue)

(* Multi-tenant pick: strict class priority with two refinements.

   Order among dispatchable candidates is (class rank, key): inside the
   Latency class the key is the head request's absolute deadline
   (earliest-deadline-first - the workload is feasibility-constrained,
   and EDF is optimal for it on a single resource); inside Throughput
   and Best_effort the key is head submission time (FIFO - nothing to
   be early FOR, so oldest-first minimizes mean wait).

   The fair-share floor keeps strict priority from starving the bottom
   class under sustained overload: every [floor_period]-th dispatch is
   handed to the LEAST-SERVED dispatchable model regardless of class.
   Under 2x overload a latency flood owns (floor_period - 1) of every
   [floor_period] slots and best-effort still makes progress - goodput
   bounded below by the floor share instead of rounding to zero.  The
   floor redirects dispatch order only; it never bypasses the batcher's
   window decision, so a floor pick is still a legal batch. *)
let pick_slo_locked t =
  let now = now_us () in
  let draining = t.draining || t.stopped in
  let candidates =
    List.filter_map
      (fun model ->
        match Rq.oldest t.queue ~model with
        | None -> None
        | Some (head : Request.t) -> (
            let pending = Rq.pending t.queue ~model in
            let wait = now -. head.submitted_us in
            match
              Batcher.decide t.policy ~pending ~oldest_wait_us:wait ~draining
            with
            | Batcher.Wait -> None
            | Batcher.Dispatch n ->
                let slo = slo_of t model in
                let key =
                  match (slo, head.deadline_us) with
                  | Slo.Latency _, Some d -> d
                  | _ -> head.submitted_us
                in
                Some (model, n, Slo.rank slo, key)))
      (Rq.models t.queue)
  in
  match candidates with
  | [] -> None
  | _ ->
      let served model =
        Option.value ~default:0 (Hashtbl.find_opt t.served model)
      in
      let floor_turn =
        t.floor_period > 0 && t.dispatches mod t.floor_period = t.floor_period - 1
      in
      let better (m, _, r, k) (m', _, r', k') =
        if floor_turn then
          (* least-served first; rank then key break ties deterministically *)
          compare (served m, r, k, m) (served m', r', k', m') < 0
        else compare (r, k, m) (r', k', m') < 0
      in
      let (model, n, _, _) =
        List.fold_left
          (fun best c -> if better c best then c else best)
          (List.hd candidates) (List.tl candidates)
      in
      if floor_turn then t.floor_picks <- t.floor_picks + 1;
      t.dispatches <- t.dispatches + 1;
      Hashtbl.replace t.served model (served model + 1);
      Some (model, n, 0.)

let pick_locked t = if t.slo_mode then pick_slo_locked t else pick_fifo_locked t

(* Shed every queued request of a model whose breaker is open: the
   fast-rejection contract extends to requests admitted just before the
   breaker tripped, and it keeps drain from pushing doomed batches
   through a failing plan.  Expired cooldowns flip to half-open here
   too, so a model with no new submissions still gets its probe. *)
let shed_broken_locked t =
  if t.breaker_threshold > 0 then begin
    let now = now_us () in
    List.iter
      (fun model ->
        match Hashtbl.find_opt t.breakers model with
        | None -> ()
        | Some b ->
            if breaker_tick_locked b ~now = `Open then begin
              let dead =
                Rq.remove_if t.queue (fun (r : Request.t) -> r.model = model)
              in
              List.iter
                (fun (r : Request.t) ->
                  complete_locked t r
                    (Request.Overloaded Request.Breaker_open))
                dead;
              if dead <> [] then publish_depth t
            end)
      (Rq.models t.queue)
  end

(* Under the lock: pop the next live retry.  Retried requests dispatch
   solo (batch 1): the batchmates that sank them the first time are
   out of the picture, and a poisoned request can only sink itself. *)
let rec take_retry_locked t =
  match Stdlib.Queue.take_opt t.retries with
  | None -> None
  | Some (r : Request.t) ->
      if Request.expired ~now_us:(now_us ()) r then begin
        complete_locked t r (Request.Overloaded Request.Deadline_exceeded);
        take_retry_locked t
      end
      else begin
        t.batches <- t.batches + 1;
        let now = now_us () in
        r.dispatched_us <- now;
        Metrics.observe t.m_wait_us (now -. r.submitted_us);
        Some { model = r.model; requests = [ r ] }
      end

(* Under the lock: shed, pick, and take the next dispatchable batch.
   Retries dispatch ahead of queued work - they have already waited one
   full batch execution. *)
let dispatch_locked t =
  shed_expired_locked t;
  shed_broken_locked t;
  match take_retry_locked t with
  | Some b -> Some b
  | None -> (
      match pick_locked t with
      | None -> None
      | Some (model, n, _) ->
          let requests = Rq.take t.queue ~model ~max:n in
          publish_depth t;
          t.batches <- t.batches + 1;
          let now = now_us () in
          List.iter
            (fun (r : Request.t) ->
              r.dispatched_us <- now;
              Metrics.observe t.m_wait_us (now -. r.submitted_us))
            requests;
          Some { model; requests })

(* Block until a batch is ready, the queue has pending-but-waiting work
   (then poll the batching window), or shutdown empties the world. *)
let rec next_batch t =
  let action =
    locked t (fun () ->
        match dispatch_locked t with
        | Some b -> `Batch b
        | None ->
            if Rq.is_empty t.queue && Stdlib.Queue.is_empty t.retries then
              if t.stopped then `Exit
              else begin
                (* nothing pending: sleep free of charge *)
                Condition.wait t.nonempty t.mu;
                `Retry
              end
            else `Poll)
  in
  match action with
  | `Batch b -> Some b
  | `Exit -> None
  | `Retry -> next_batch t
  | `Poll ->
      (* Re-check the stop flags before parking: a shutdown raised
         between the dispatch attempt and this wait must cost nothing
         (and even a racing one costs at most the select timeout, since
         shutdown also writes the wake pipe). *)
      if not (locked t (fun () -> t.stopped || t.draining)) then wait_poll t;
      next_batch t

(* Non-blocking variant for caller-runs pumping: never sleeps, never
   waits.  [`Waiting] means requests are pending but every batching
   window is still open. *)
let try_next_batch t =
  locked t (fun () ->
      match dispatch_locked t with
      | Some b -> `Batch b
      | None ->
          if Rq.is_empty t.queue && Stdlib.Queue.is_empty t.retries then
            `Empty
          else `Waiting)

let poll_interval_s t = t.poll_s
let outstanding t = locked t (fun () -> t.outstanding)

(* Re-admit a request from a failed batch for a solo re-dispatch.  No
   admission control: the request is already admitted, already counted
   in [outstanding], and refusing it here would lose it - [requeue]
   therefore never refuses, even while draining or stopped (the worker
   exit condition and [drain] both wait for the retry FIFO to empty). *)
let requeue t (req : Request.t) =
  locked t (fun () ->
      t.retried <- t.retried + 1;
      Metrics.inc t.m_retried;
      if Trace.active () then begin
        Trace.instant ~phase:"serve" "retry"
          ~attrs:
            [
              ("model", Trace.Str req.model);
              ("id", Trace.Int req.id);
              ("attempts", Trace.Int req.attempts);
            ];
        (* The arrow takes a retry hop: a "t" step on the requeuing
           domain keeps the chain connected through the detour. *)
        Trace.flow_step ~phase:"serve" req.trace "request"
          ~attrs:[ ("hop", Trace.Str "retry") ]
      end;
      Stdlib.Queue.push req t.retries;
      Condition.signal t.nonempty);
  wake t

let await t id =
  locked t (fun () ->
      let rec go () =
        match Hashtbl.find_opt t.outcomes id with
        | Some o ->
            Hashtbl.remove t.outcomes id;
            o
        | None ->
            Condition.wait t.done_cond t.mu;
            go ()
      in
      go ())

let poll t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.outcomes id with
      | Some o ->
          Hashtbl.remove t.outcomes id;
          Some o
      | None -> None)

(* Flush everything in flight, then accept again.  While draining,
   submissions are refused ([Shutting_down]) and the batcher dispatches
   immediately instead of holding the window open. *)
let drain_with t ~pump =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.nonempty);
  wake t;
  pump ();
  locked t (fun () ->
      while t.outstanding > 0 do
        Condition.wait t.done_cond t.mu
      done;
      t.draining <- false)

let drain t = drain_with t ~pump:ignore

let shutdown t =
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.done_cond);
  wake t

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  shed_admission : int;
  displaced : int;
  floor_picks : int;
  completed : int;
  failed : int;
  degraded : int;
  batches : int;
  outstanding : int;
  queue_depth : int;
  max_depth_seen : int;
  retried : int;
  duplicates : int;
  breaker_opens : int;
  breaker_closes : int;
}

let stats t =
  locked t (fun () ->
      {
        submitted = t.submitted;
        rejected = t.rejected;
        shed = t.shed;
        shed_admission = t.shed_admission;
        displaced = t.displaced;
        floor_picks = t.floor_picks;
        completed = t.completed;
        failed = t.failed;
        degraded = t.degraded;
        batches = t.batches;
        outstanding = t.outstanding;
        queue_depth = Rq.length t.queue;
        max_depth_seen = Rq.max_depth_seen t.queue;
        retried = t.retried;
        duplicates = t.duplicates;
        breaker_opens = t.breaker_opens;
        breaker_closes = t.breaker_closes;
      })
