(* Multi-tenant model-zoo serving.

   The zoo is policy around the serving mechanism: Serve/Scheduler
   already know how to batch, dispatch and supervise; the zoo decides
   WHAT the scheduler optimizes (per-model SLO classes), remembers what
   was compiled (the persistent plan store), and keeps the per-class
   score (latency quantiles, goodput numerators) that multi-tenant
   evaluation is judged on.

   Prewarm ordering matters: plans are loaded-or-compiled and seeded
   into the server's session cache BEFORE Serve.warm builds executor
   contexts, so warm's checkouts hit the cache; and all of it happens
   before the first submit is legal, so no request ever races a cold
   compile.  On a warm store that leaves zero compile-phase spans in
   the whole process trace - the property the CI smoke test pins. *)

open Astitch_ir
open Astitch_runtime

let backend = Astitch_core.Astitch.full_backend

type config = {
  serve : Serve.config;
  plan_dir : string option;
  verify_plans : bool;
}

let default_config =
  { serve = Serve.default_config; plan_dir = None; verify_plans = false }

type prewarm = {
  loaded : int;
  compiled : int;
  verified : int;
  rejected : int;
  saved : int;
}

(* Per-class account: counters plus a latency reservoir.  Per-zoo (not
   the process-wide metrics registry) so tests and benches can run
   several zoos in one process without cross-talk; the reservoir is
   sorted once, at read time. *)
type account = {
  mutable a_submitted : int;
  mutable a_completed : int;
  mutable a_shed : int;
  mutable a_rejected : int;
  mutable a_failed : int;
  mutable a_deadline_met : int;
  mutable latencies : float list;
}

type pending = { p_cls : string; p_deadline_us : float option }

type t = {
  config : config;
  serve : Serve.t;
  registrations : (string * Slo.t) list;
  slos : (string, Slo.t) Hashtbl.t;
  store : Plan_store.t option;
  accounts : (string, account) Hashtbl.t;  (** by class name *)
  tickets : (int, pending) Hashtbl.t;
  amu : Mutex.t;  (** guards accounts + tickets *)
  mutable prewarmed : prewarm option;
}

let account_for t cls =
  match Hashtbl.find_opt t.accounts cls with
  | Some a -> a
  | None ->
      let a =
        {
          a_submitted = 0;
          a_completed = 0;
          a_shed = 0;
          a_rejected = 0;
          a_failed = 0;
          a_deadline_met = 0;
          latencies = [];
        }
      in
      Hashtbl.replace t.accounts cls a;
      a

let create ?(config = default_config) registrations =
  if registrations = [] then invalid_arg "Zoo.create: no models";
  let slos = Hashtbl.create 8 in
  let pairs =
    List.map
      (fun ((m : Serve.model), slo) ->
        if Hashtbl.mem slos m.Serve.name then
          invalid_arg
            (Printf.sprintf "Zoo.create: duplicate model %s" m.Serve.name);
        Hashtbl.replace slos m.Serve.name slo;
        (m.Serve.name, slo))
      registrations
  in
  let serve_config = { config.serve with Serve.slos = pairs } in
  let serve = Serve.create ~config:serve_config (List.map fst registrations) in
  let store = Option.map (fun dir -> Plan_store.open_ ~dir) config.plan_dir in
  {
    config;
    serve;
    registrations = pairs;
    slos;
    store;
    accounts = Hashtbl.create 4;
    tickets = Hashtbl.create 64;
    amu = Mutex.create ();
    prewarmed = None;
  }

let server t = t.serve
let models t = t.registrations

let slo t ~model =
  match Hashtbl.find_opt t.slos model with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Zoo: unknown model %s" model)

(* --- Prewarm ------------------------------------------------------------- *)

(* The batch sizes Worker_pool.warm will check out, and therefore the
   exact cache slots prewarm must fill: one max-batch plan for a
   shape-polymorphic model, batch-1 + max-batch for fixed-extent. *)
let warm_sizes t ~model =
  let mb = t.config.serve.Serve.max_batch in
  if Serve.symbolic t.serve ~model then [ mb ]
  else if mb = 1 then [ 1 ]
  else [ 1; mb ]

(* A store file names its (fingerprint, arch), but the bytes inside are
   what we trust least: before serving a loaded plan, its graph must
   re-fingerprint to the requested key, its arch must match, and the
   plan must satisfy every structural invariant.  The optional
   bit-identity gate on top compares canonical encodings against a
   fresh compile - the strongest check, at the price of the compile the
   store was meant to save. *)
let structurally_ok ~fingerprint ~arch plan =
  Fingerprint.of_graph plan.Astitch_plan.Kernel_plan.graph = fingerprint
  && plan.Astitch_plan.Kernel_plan.arch.Astitch_simt.Arch.name = arch
  && Astitch_plan.Kernel_plan.check_all plan = []

let prewarm t =
  match t.prewarmed with
  | Some p -> p
  | None ->
      let arch = t.config.serve.Serve.arch in
      let cache = Serve.plan_cache t.serve in
      let loaded = ref 0
      and compiled = ref 0
      and verified = ref 0
      and rejected = ref 0
      and saved = ref 0 in
      let compile_and_save g ~fingerprint =
        let result, _outcome = Session.compile_cached cache backend arch g in
        incr compiled;
        (match t.store with
        | None -> ()
        | Some store -> (
            match
              Plan_store.save store ~fingerprint ~arch:arch.name
                result.Session.plan
            with
            | Ok () -> incr saved
            | Error _ -> ()))
      in
      let handle spec ~required n =
        let g = spec.Batching.build n in
        let fingerprint = Fingerprint.of_graph g in
        match t.store with
        | None -> if required then compile_and_save g ~fingerprint
        | Some store -> (
            match Plan_store.load store ~fingerprint ~arch:arch.name with
            | Plan_store.Absent ->
                if required then compile_and_save g ~fingerprint
            | Plan_store.Rejected _ ->
                incr rejected;
                if required then compile_and_save g ~fingerprint
            | Plan_store.Loaded plan ->
                if not (structurally_ok ~fingerprint ~arch:arch.name plan)
                then begin
                  incr rejected;
                  if required then compile_and_save g ~fingerprint
                end
                else if t.config.verify_plans then begin
                  (* Bit-identity gate: the freshly compiled plan is
                     the reference; a loaded plan that doesn't encode
                     identically is discarded (the fresh compile is
                     already cached and re-saved). *)
                  let fresh, _ = Session.compile_cached cache backend arch g in
                  incr compiled;
                  if Astitch_plan.Plan_codec.equal plan fresh.Session.plan
                  then incr verified
                  else begin
                    incr rejected;
                    ignore
                      (Plan_store.save store ~fingerprint ~arch:arch.name
                         fresh.Session.plan)
                  end
                end
                else begin
                  Session.precache cache backend arch g
                    (Session.result_of_plan backend plan);
                  incr loaded
                end)
      in
      List.iter
        (fun (model, _slo) ->
          let spec = Serve.spec t.serve ~model in
          let sizes = warm_sizes t ~model in
          List.iter (handle spec ~required:true) sizes;
          (* A fixed-extent model dispatches at every batch size traffic
             happens to form, and shutdown persisted whatever sizes the
             previous process compiled: load any of those the store
             holds too (never compiling for sizes nobody asked about
             yet), so a restart is warm for more than the warm list. *)
          if t.store <> None && not (Serve.symbolic t.serve ~model) then
            for n = 1 to t.config.serve.Serve.max_batch do
              if not (List.mem n sizes) then handle spec ~required:false n
            done)
        t.registrations;
      Serve.warm t.serve;
      let p =
        {
          loaded = !loaded;
          compiled = !compiled;
          verified = !verified;
          rejected = !rejected;
          saved = !saved;
        }
      in
      t.prewarmed <- Some p;
      p

(* --- Per-class request accounting --------------------------------------- *)

let ensure_open t =
  if t.prewarmed = None then
    invalid_arg "Zoo: prewarm before submitting traffic"

type ticket = Serve.ticket

let cls_of t model = Slo.class_name (slo t ~model)

let locked t f =
  Mutex.lock t.amu;
  match f () with
  | v ->
      Mutex.unlock t.amu;
      v
  | exception e ->
      Mutex.unlock t.amu;
      raise e

let submit_async ?deadline_us t ~model ~params =
  ensure_open t;
  let cls = cls_of t model in
  let res = Serve.submit_async ?deadline_us t.serve ~model ~params in
  locked t (fun () ->
      let a = account_for t cls in
      match res with
      | Ok ticket ->
          a.a_submitted <- a.a_submitted + 1;
          let p_deadline_us =
            match deadline_us with
            | Some _ as d -> d
            | None -> Slo.default_deadline_us (slo t ~model)
          in
          Hashtbl.replace t.tickets ticket { p_cls = cls; p_deadline_us }
      | Error _ -> a.a_rejected <- a.a_rejected + 1);
  res

(* Fold an outcome into its class account; the ticket entry is consumed
   with the outcome, mirroring the scheduler's own outcome table. *)
let settle t ticket outcome =
  locked t (fun () ->
      match Hashtbl.find_opt t.tickets ticket with
      | None -> ()
      | Some p -> (
          Hashtbl.remove t.tickets ticket;
          let a = account_for t p.p_cls in
          match (outcome : Request.outcome) with
          | Request.Done { latency_us; _ } ->
              a.a_completed <- a.a_completed + 1;
              a.latencies <- latency_us :: a.latencies;
              let met =
                match p.p_deadline_us with
                | None -> true
                | Some d -> latency_us <= d
              in
              if met then a.a_deadline_met <- a.a_deadline_met + 1
          | Request.Overloaded _ -> a.a_shed <- a.a_shed + 1
          | Request.Failed _ -> a.a_failed <- a.a_failed + 1))

let await t ticket =
  let outcome = Serve.await t.serve ticket in
  settle t ticket outcome;
  outcome

let poll t ticket =
  match Serve.poll t.serve ticket with
  | None -> None
  | Some outcome ->
      settle t ticket outcome;
      Some outcome

let submit ?deadline_us t ~model ~params =
  match submit_async ?deadline_us t ~model ~params with
  | Ok ticket -> await t ticket
  | Error o -> Request.Overloaded o

type class_stats = {
  cls : string;
  submitted : int;
  completed : int;
  shed : int;
  rejected : int;
  failed : int;
  deadline_met : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

let quantile sorted q =
  match sorted with
  | [||] -> 0.
  | a ->
      let n = Array.length a in
      let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      a.(max 0 (min (n - 1) i))

let class_stats t =
  locked t (fun () ->
      List.filter_map
        (fun cls ->
          match Hashtbl.find_opt t.accounts cls with
          | None -> None
          | Some a ->
              let sorted = Array.of_list a.latencies in
              Array.sort compare sorted;
              let n = Array.length sorted in
              let mean =
                if n = 0 then 0.
                else Array.fold_left ( +. ) 0. sorted /. float_of_int n
              in
              Some
                {
                  cls;
                  submitted = a.a_submitted;
                  completed = a.a_completed;
                  shed = a.a_shed;
                  rejected = a.a_rejected;
                  failed = a.a_failed;
                  deadline_met = a.a_deadline_met;
                  mean_us = mean;
                  p50_us = quantile sorted 0.50;
                  p95_us = quantile sorted 0.95;
                  p99_us = quantile sorted 0.99;
                })
        Slo.all_class_names)

let drain t = Serve.drain t.serve

let shutdown t =
  (* Persist everything compiled since prewarm (fixed-extent models pick
     up extra batch sizes on demand) before the server goes down; the
     next process's prewarm then loads instead of compiling them. *)
  let saved =
    match t.store with
    | None -> 0
    | Some store ->
        let n, _failed =
          Plan_store.save_session_cache store
            ~backend:backend.Astitch_plan.Backend_intf.name
            (Serve.plan_cache t.serve)
        in
        n
  in
  Serve.shutdown t.serve;
  saved
