(** Service-level objective classes for multi-tenant serving.

    Every model registered with the zoo carries one SLO class; the
    scheduler turns the class into dispatch order (strict class
    priority, earliest-deadline-first inside {!Latency}), default
    deadlines, and displacement order when the shared queue fills. *)

type t =
  | Latency of { deadline_us : float }
      (** interactive traffic: requests default to this relative
          deadline and dispatch earliest-deadline-first *)
  | Throughput  (** batch traffic: ahead of best-effort, no deadline *)
  | Best_effort
      (** background traffic: runs in whatever capacity is left, but
          the fair-share floor guarantees that "whatever is left" never
          rounds down to zero *)

val rank : t -> int
(** Strict priority: 0 = [Latency], 1 = [Throughput], 2 =
    [Best_effort].  Lower rank dispatches first and displaces higher
    rank when the queue is full. *)

val class_name : t -> string
(** ["latency"], ["throughput"] or ["best-effort"] - the per-class
    label benches and summaries aggregate by. *)

val all_class_names : string list
(** In rank order. *)

val default_deadline_us : t -> float option
(** The relative deadline a request inherits when submitted without an
    explicit one: [Some d] for [Latency {deadline_us = d}], [None]
    otherwise. *)

val to_string : t -> string
(** Round-trips with {!of_string}: ["latency:2000"], ["throughput"],
    ["best-effort"]. *)

val of_string : string -> (t, string) result
(** Parse a CLI spec: ["latency:<deadline_us>"] (also accepts
    ["latency=<deadline_us>"]), ["throughput"], ["best-effort"] (or
    ["best_effort"]).  [Error] explains the accepted forms. *)
