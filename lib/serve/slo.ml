(* SLO classes: the unit of policy in multi-tenant serving.  Pure data;
   the scheduler interprets rank/deadline, the zoo carries the class
   from registration to per-class accounting. *)

type t = Latency of { deadline_us : float } | Throughput | Best_effort

let rank = function Latency _ -> 0 | Throughput -> 1 | Best_effort -> 2

let class_name = function
  | Latency _ -> "latency"
  | Throughput -> "throughput"
  | Best_effort -> "best-effort"

let all_class_names = [ "latency"; "throughput"; "best-effort" ]

let default_deadline_us = function
  | Latency { deadline_us } -> Some deadline_us
  | Throughput | Best_effort -> None

let to_string = function
  | Latency { deadline_us } ->
      (* %g keeps round microsecond budgets round on the way back out *)
      Printf.sprintf "latency:%g" deadline_us
  | Throughput -> "throughput"
  | Best_effort -> "best-effort"

let of_string s =
  let lower = String.lowercase_ascii (String.trim s) in
  let latency_arg prefix =
    let n = String.length prefix in
    if String.length lower > n && String.sub lower 0 n = prefix then
      Some (String.sub lower n (String.length lower - n))
    else None
  in
  match lower with
  | "throughput" -> Ok Throughput
  | "best-effort" | "best_effort" | "besteffort" -> Ok Best_effort
  | _ -> (
      let arg =
        match latency_arg "latency:" with
        | Some _ as a -> a
        | None -> latency_arg "latency="
      in
      match arg with
      | Some d -> (
          match float_of_string_opt d with
          | Some deadline_us when deadline_us > 0. ->
              Ok (Latency { deadline_us })
          | Some _ -> Error "latency deadline must be > 0 microseconds"
          | None ->
              Error (Printf.sprintf "bad latency deadline %S (want e.g. latency:2000)" d))
      | None ->
          Error
            (Printf.sprintf
               "unknown SLO class %S (want latency:<deadline_us>, throughput, \
                or best-effort)"
               s))
