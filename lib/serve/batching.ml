(* Dynamic-batching shape analysis, packing and unpacking.

   The batcher may merge requests only when the merged execution is
   BIT-IDENTICAL to running each request alone - the whole contract of
   the serving runtime.  That property is per-builder: a builder family
   [build : batch -> graph] qualifies when every parameter either keeps
   its shape as the batch grows (a shared weight) or scales exactly one
   axis linearly with the batch (a per-request input), and every output
   does the same.  We discover the classification structurally instead
   of trusting annotations: build the graph at batch 1 and at batch 2,
   diff every parameter and output shape, and reject anything that does
   not fit ([Not_batchable]).  The numeric half of the contract - no op
   mixes rows across requests - cannot be decided from shapes alone; it
   is enforced by the bit-identity test suite over every served builder
   (zoo workloads and random graphs), and double-checked at runtime by
   the [verify] sampling hook in the worker pool.

   Packing concatenates each per-request parameter along its batch axis
   in request order and pads the tail batch by replicating the last
   request's binding (replication keeps padded rows numerically benign -
   no zeros flowing into logs or rsqrt that the real rows never see).
   Unpacking slices each output back along its batch axis; padded rows
   are simply never read. *)

open Astitch_ir
open Astitch_tensor

exception Not_batchable of string

let not_batchable fmt = Printf.ksprintf (fun m -> raise (Not_batchable m)) fmt

type axis_info = { axis : int; extent : int }

type spec = {
  build : int -> Graph.t;
  base : Graph.t;
  fingerprint : string;
  request_params : (string * axis_info) list;
  shared_params : (string * Shape.t) list;
  outputs : axis_info option list;
}

(* --- Shape diffing ------------------------------------------------------- *)

(* Classify one (batch-1 shape, batch-2 shape) pair: equal shapes are
   batch-invariant; exactly one axis doubling is the batch axis. *)
let diff_axis ~what s1 s2 =
  let d1 = Shape.to_list s1 and d2 = Shape.to_list s2 in
  if List.length d1 <> List.length d2 then
    not_batchable "%s: rank changes with batch (%s vs %s)" what
      (Shape.to_string s1) (Shape.to_string s2);
  let diffs =
    List.mapi (fun i d -> (i, d, List.nth d2 i)) d1
    |> List.filter (fun (_, a, b) -> a <> b)
  in
  match diffs with
  | [] -> None
  | [ (axis, e1, e2) ] when e2 = 2 * e1 -> Some { axis; extent = e1 }
  | _ ->
      not_batchable "%s: shape does not scale one axis linearly (%s vs %s)"
        what (Shape.to_string s1) (Shape.to_string s2)

let param_shapes g =
  List.map
    (fun id ->
      match Graph.op g id with
      | Op.Parameter { name } -> (name, Graph.shape g id)
      | _ -> assert false)
    (Graph.parameters g)

let output_shapes g = List.map (Graph.shape g) (Graph.outputs g)

let analyze build =
  let base = build 1 in
  let g2 = build 2 in
  let p1 = param_shapes base and p2 = param_shapes g2 in
  if List.length p1 <> List.length p2 then
    not_batchable "parameter count changes with batch (%d vs %d)"
      (List.length p1) (List.length p2);
  let request_params, shared_params =
    List.fold_left
      (fun (req, shared) (name, s1) ->
        match List.assoc_opt name p2 with
        | None -> not_batchable "parameter %s disappears at batch 2" name
        | Some s2 -> (
            match diff_axis ~what:("parameter " ^ name) s1 s2 with
            | Some info -> ((name, info) :: req, shared)
            | None -> (req, (name, s1) :: shared)))
      ([], []) p1
  in
  let o1 = output_shapes base and o2 = output_shapes g2 in
  if List.length o1 <> List.length o2 then
    not_batchable "output count changes with batch (%d vs %d)"
      (List.length o1) (List.length o2);
  let outputs =
    List.mapi
      (fun i s1 ->
        diff_axis ~what:(Printf.sprintf "output %d" i) s1 (List.nth o2 i))
      o1
  in
  if request_params = [] then
    not_batchable "no per-request parameters: nothing to batch";
  {
    build;
    base;
    fingerprint = Fingerprint.of_graph base;
    request_params = List.rev request_params;
    shared_params = List.rev shared_params;
    outputs;
  }

(* --- Tensor surgery along an axis ---------------------------------------- *)

(* Row-major concat of same-shape-elsewhere tensors along [axis]. *)
let concat_axis ~axis ts =
  match ts with
  | [] -> invalid_arg "Batching.concat_axis: empty"
  | first :: _ ->
      let shape = Shape.to_list (Tensor.shape first) in
      let outer =
        List.filteri (fun i _ -> i < axis) shape |> List.fold_left ( * ) 1
      in
      let inner =
        List.filteri (fun i _ -> i > axis) shape |> List.fold_left ( * ) 1
      in
      let seg t = Shape.dim (Tensor.shape t) axis * inner in
      let total_axis =
        List.fold_left (fun a t -> a + Shape.dim (Tensor.shape t) axis) 0 ts
      in
      let out_shape =
        List.mapi (fun i d -> if i = axis then total_axis else d) shape
      in
      let dst = Array.make (outer * total_axis * inner) 0. in
      let row_bytes = total_axis * inner in
      let pos = ref 0 in
      List.iter
        (fun t ->
          let src = Tensor.data t in
          let s = seg t in
          for o = 0 to outer - 1 do
            Array.blit src (o * s) dst ((o * row_bytes) + !pos) s
          done;
          pos := !pos + s)
        ts;
      Tensor.create (Shape.of_list out_shape) dst

(* Slice [lo, hi) along [axis]. *)
let slice_axis ~axis ~lo ~hi t =
  let shape = Shape.to_list (Tensor.shape t) in
  let dim = List.nth shape axis in
  if lo < 0 || hi > dim || lo >= hi then
    invalid_arg
      (Printf.sprintf "Batching.slice_axis: [%d,%d) out of <%d>" lo hi dim);
  let outer =
    List.filteri (fun i _ -> i < axis) shape |> List.fold_left ( * ) 1
  in
  let inner =
    List.filteri (fun i _ -> i > axis) shape |> List.fold_left ( * ) 1
  in
  let out_shape =
    List.mapi (fun i d -> if i = axis then hi - lo else d) shape
  in
  let src = Tensor.data t in
  let seg = (hi - lo) * inner in
  let dst = Array.make (outer * seg) 0. in
  for o = 0 to outer - 1 do
    Array.blit src (((o * dim) + lo) * inner) dst (o * seg) seg
  done;
  Tensor.create (Shape.of_list out_shape) dst

(* --- Packing / unpacking ------------------------------------------------- *)

let base_param_shape spec name =
  match
    Option.map (Graph.shape spec.base) (Graph.find_parameter spec.base name)
  with
  | Some s -> s
  | None -> not_batchable "parameter %s not in the base graph" name

(* Validate one request's bindings: exactly the per-request parameters,
   each at its batch-1 shape. *)
let check_request spec params =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name spec.request_params) then
        not_batchable "binding %s is not a per-request parameter" name)
    params;
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name params with
      | None -> not_batchable "request lacks a binding for %s" name
      | Some t ->
          let want = base_param_shape spec name in
          if not (Shape.equal (Tensor.shape t) want) then
            not_batchable "binding %s has shape %s, want %s" name
              (Shape.to_string (Tensor.shape t))
              (Shape.to_string want))
    spec.request_params

let pack spec ~batch requests =
  let n = List.length requests in
  if n = 0 then invalid_arg "Batching.pack: no requests";
  if n > batch then
    invalid_arg
      (Printf.sprintf "Batching.pack: %d requests exceed batch %d" n batch);
  List.iter (check_request spec) requests;
  let last = List.nth requests (n - 1) in
  let padded =
    requests @ List.init (batch - n) (fun _ -> last)
  in
  List.map
    (fun (name, info) ->
      let parts = List.map (fun r -> List.assoc name r) padded in
      let packed = concat_axis ~axis:info.axis parts in
      (* serving-runtime fault site: raise models a failed pack,
         corrupt perturbs one cell of the freshly concatenated tensor
         (safe to mutate in place - [concat_axis] allocates it) *)
      (match
         Astitch_plan.Fault_site.check_runtime
           Astitch_plan.Fault_site.Pack ~pass:name
       with
      | None -> ()
      | Some seed ->
          let d = Tensor.data packed in
          let nd = Array.length d in
          if nd > 0 then
            d.(abs seed mod nd) <- d.(abs seed mod nd) +. 1.);
      (name, packed))
    spec.request_params

let unpack spec ~count outputs =
  if List.length outputs <> List.length spec.outputs then
    invalid_arg "Batching.unpack: output arity mismatch";
  List.init count (fun i ->
      List.map2
        (fun info t ->
          let sliced =
            match info with
            | None -> Tensor.copy t
            | Some { axis; extent } ->
                slice_axis ~axis ~lo:(i * extent) ~hi:((i + 1) * extent) t
          in
          (* serving-runtime fault site: corrupt perturbs the freshly
             sliced (or copied) per-request output in place *)
          (match
             Astitch_plan.Fault_site.check_runtime
               Astitch_plan.Fault_site.Unpack ~pass:"unpack"
           with
          | None -> ()
          | Some seed ->
              let d = Tensor.data sliced in
              let nd = Array.length d in
              if nd > 0 then
                d.(abs seed mod nd) <- d.(abs seed mod nd) +. 1.);
          sliced)
        spec.outputs outputs)

(* Deterministic per-request bindings (the serving analogue of
   [Session.random_params], restricted to per-request parameters). *)
let random_request spec ~seed =
  List.mapi
    (fun i (name, _) ->
      (name, Tensor.random ~seed:(seed + (31 * i)) (base_param_shape spec name)))
    spec.request_params

let random_shared spec ~seed =
  List.mapi
    (fun i (name, shape) ->
      (name, Tensor.random ~seed:(seed + 17 + (37 * i)) shape))
    spec.shared_params
