(** Dynamic-batching shape analysis, packing and unpacking.

    A builder family [build : batch -> graph] is batchable when every
    parameter and output either keeps its shape across batch sizes
    (shared) or scales exactly one axis linearly with the batch
    (per-request).  [analyze] discovers that classification by diffing
    the graphs at batch 1 and 2; [pack]/[unpack] then move request
    tensors in and out of a batched execution such that, for
    row-independent builders, batched results are bit-identical to
    running every request alone. *)

open Astitch_ir
open Astitch_tensor

exception Not_batchable of string

type axis_info = {
  axis : int;  (** which axis scales with the batch *)
  extent : int;  (** that axis's extent at batch 1 *)
}

type spec = {
  build : int -> Graph.t;
  base : Graph.t;  (** the batch-1 graph *)
  fingerprint : string;  (** of [base]; the batching-compatibility key *)
  request_params : (string * axis_info) list;  (** packed per request *)
  shared_params : (string * Shape.t) list;  (** weights, bound once *)
  outputs : axis_info option list;
      (** per output: [Some] = sliced per request, [None] = batch-invariant *)
}

val analyze : (int -> Graph.t) -> spec
(** Classify a builder family.  Builds the graph at batch 1 and 2.
    @raise Not_batchable when any shape fails to classify. *)

val pack :
  spec -> batch:int -> (string * Tensor.t) list list -> (string * Tensor.t) list
(** Concatenate up to [batch] requests' bindings along their batch axes,
    padding the tail by replicating the last request.  Validates every
    request against the spec.
    @raise Not_batchable on a binding mismatch. *)

val unpack : spec -> count:int -> Tensor.t list -> Tensor.t list list
(** Slice batched outputs back into [count] per-request output lists.
    Padded rows are dropped; batch-invariant outputs are copied to every
    request. *)

val concat_axis : axis:int -> Tensor.t list -> Tensor.t
(** Row-major concatenation along [axis] (exposed for tests). *)

val slice_axis : axis:int -> lo:int -> hi:int -> Tensor.t -> Tensor.t
(** Row-major slice [lo, hi) along [axis] (exposed for tests). *)

val random_request : spec -> seed:int -> (string * Tensor.t) list
(** Deterministic per-request bindings at batch 1. *)

val random_shared : spec -> seed:int -> (string * Tensor.t) list
(** Deterministic shared-weight bindings. *)
