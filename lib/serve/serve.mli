(** Batched serving runtime front end.

    Load batch-parameterized model builders, then submit requests with
    per-request parameter bindings; the runtime batches compatible
    requests continuously - a dispatched batch executes at exactly its
    request count, any size up to [max_batch], with zero padded rows -
    on a pool of worker domains with reused executor contexts, and
    hands back per-request outputs bit-identical to solo execution.
    Builders that pass the batch-axis analysis compile ONE
    shape-polymorphic plan per model (at [max_batch]) and serve every
    batch size on it by prefix rebinding; the rest fall back to
    fixed-extent contexts per exact size.  Admission is bounded: past
    [queue_depth] the server answers [Overloaded] instead of queuing. *)

open Astitch_ir
open Astitch_tensor

type model = {
  name : string;
  build : batch:int -> Graph.t;
      (** must be batchable per [Batching.analyze] *)
}

type config = {
  workers : int;
      (** worker domains; 0 = caller-runs mode (no domains - [await],
          [submit] and [drain] execute batches on the calling thread;
          right for single-core machines and embedding in an existing
          loop).  [poll] never makes progress by itself in this mode. *)
  max_batch : int;  (** largest batch a dispatch may take *)
  max_wait_us : float;  (** batching window *)
  queue_depth : int;  (** admission-control bound, across models *)
  default_deadline_us : float option;  (** relative; [None] = no deadline *)
  arch : Astitch_simt.Arch.t;
  fused : bool;
  cache_capacity : int;  (** shared plan cache entries *)
  verify_every : int;  (** bit-identity spot checks; 0 = off *)
  seed : int;  (** shared-weight generation *)
  retry_budget : int;
      (** how many failed batch executions a request survives before
          dropping to the per-request fallback rung *)
  breaker_threshold : int;
      (** consecutive batch failures that open a model's circuit
          breaker; 0 disables breakers *)
  breaker_cooldown_us : float;
      (** how long an open breaker fast-rejects before a half-open
          probe is admitted *)
  wedge_timeout_us : float;
      (** a worker stuck mid-batch longer than this has its batch
          stolen and recovered *)
  restart_backoff_us : float;
      (** base delay before respawning a dead worker; doubles per
          consecutive death (capped at 128x) *)
  slos : (string * Slo.t) list;
      (** per-model SLO classes.  Non-empty switches the scheduler into
          multi-tenant mode: strict class priority with EDF inside the
          Latency class, a fair-share floor, and displacement shedding.
          A model with a [Latency] class inherits its deadline as the
          per-request default.  Empty (default) keeps the legacy FIFO
          scheduler.
          Listing an unregistered model is an [Invalid_argument]. *)
  fair_share_floor : float;
      (** fraction of dispatches reserved for the least-served model in
          multi-tenant mode (default 0.125 = every 8th dispatch), so
          Best_effort tenants keep making progress under overload;
          [0.] = pure strict priority *)
}

val default_config : config
(** 2 workers, max_batch 8, 2ms window, depth 64, no deadline, v100,
    fused, cache 64, no verification, seed 42; retry budget 2, breaker
    threshold 4 / cooldown 5ms, wedge timeout 50ms, restart backoff
    1ms; no SLOs (legacy FIFO scheduling), fair-share floor 1/8. *)

type t

val create : ?config:config -> model list -> t
(** Analyze every builder for batchability, fix shared weights
    deterministically, spawn the workers.
    @raise Batching.Not_batchable if a builder cannot batch.
    @raise Invalid_argument on duplicate or empty model lists. *)

val warm : t -> unit
(** Pre-compile every model so first requests don't pay compile
    latency: the single max-batch context for a shape-polymorphic
    model, batch-1 and max-batch contexts for a fixed-extent one. *)

val plan_cache : t -> Astitch_runtime.Session.cache
(** The server's shared session cache.  Zoo prewarming seeds it with
    store-loaded plans (so [warm] hits instead of compiling) and
    persists it on shutdown. *)

type ticket = int

val submit_async :
  ?deadline_us:float ->
  t ->
  model:string ->
  params:(string * Tensor.t) list ->
  (ticket, Request.overload) result
(** Admit or refuse, without blocking.  [deadline_us] is relative to
    now; precedence is explicit per-request deadline, then the model's
    SLO-class default (a [Latency] class carries one), then the config
    default.  A request whose deadline is already past on arrival is
    refused as [Deadline_exceeded] at admission (counted under
    [shed_admission]) instead of occupying queue space.
    @raise Invalid_argument on an unknown model. *)

val await : t -> ticket -> Request.outcome
(** Block until the outcome lands; consumes the ticket.  In caller-runs
    mode ([workers = 0]) this executes batches on the calling thread. *)

val poll : t -> ticket -> Request.outcome option

val submit :
  ?deadline_us:float ->
  t ->
  model:string ->
  params:(string * Tensor.t) list ->
  Request.outcome
(** [submit_async] + [await]; refusals come back as [Overloaded]. *)

val random_request : t -> model:string -> seed:int -> (string * Tensor.t) list
(** Deterministic per-request bindings for [model] (generators, tests,
    benches). *)

val spec : t -> model:string -> Batching.spec

val symbolic : t -> model:string -> bool
(** True when [model] serves every batch size off one shape-polymorphic
    max-batch context; false when it fell back to fixed-extent
    compilation (batch-axis analysis rejected the builder, or its
    context couldn't rebind). *)

val context_pool_sizes : t -> (string * int) list
(** Free pooled executor contexts per model, sorted by name.  After a
    drain on a single-worker (or caller-runs) server, a symbolic model
    holds exactly 1. *)

val shared_weights : t -> model:string -> (string * Tensor.t) list
(** The weights the server fixed at load time - what a reference solo
    execution must bind to reproduce served outputs. *)

val drain : t -> unit
(** Flush all outstanding work, then resume accepting. *)

val shutdown : t -> unit
(** Drain, stop the scheduler, join every worker.  Idempotent. *)

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  shed_admission : int;
      (** refused at submit with an already-past deadline (subset of
          [rejected]; also ticks the [serve.shed] /
          [serve.shed_admission] metrics) *)
  displaced : int;
      (** queued lower-SLO-class requests evicted to admit higher-class
          arrivals (subset of [shed]; multi-tenant mode only) *)
  floor_picks : int;
      (** dispatches the fair-share floor redirected to the
          least-served model (multi-tenant mode only) *)
  completed : int;
  failed : int;
  degraded : int;
  batches : int;
  padded_rows : int;
      (** rows executed beyond real requests; continuous batching keeps
          this at 0 - it is surfaced (rather than assumed) so any
          regression shows up in every stats consumer *)
  plan_compiles : int;
      (** plan compiles performed at context checkout; one per
          shape-polymorphic model in steady state *)
  outstanding : int;
  queue_depth : int;
  max_depth_seen : int;
  retried : int;  (** failed-batch requests re-dispatched solo *)
  duplicates : int;  (** completions dropped by first-wins *)
  breaker_opens : int;
  breaker_closes : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

type phase_latency = {
  phase : string;
  count : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}
(** One row of the tail-latency blame table: quantiles of one lifecycle
    phase's histogram ([serve.<phase>_us]). *)

val latency_breakdown : unit -> phase_latency list
(** Per-phase latency attribution from the process-wide metrics
    registry, in pipeline order (queue, batch_wait, pack, exec, unpack)
    with the end-to-end [request] row last.  The five phase stamps
    telescope - for every completed request their sum equals its
    end-to-end latency sample - so per-phase totals reconcile with the
    [request] total.  Quantiles do {e not} sum across rows (quantiles
    are not additive); the means and totals do. *)

type supervision = Worker_pool.supervision = {
  restarts : int;  (** worker domains respawned after a death *)
  quarantined : int;  (** contexts retired after a fault-touched batch *)
  wedged : int;  (** batches stolen from stalled workers *)
  workers_alive : int;
}

val supervision : t -> supervision

val breaker_state : t -> model:string -> [ `Closed | `Open | `Half_open ]

type disposition = {
  served : int;
  d_degraded : int;
  d_failed : int;
  overloaded : int;  (** shed after admission (deadline, breaker) *)
  d_rejected : int;  (** refused at submission *)
  lost : int;
      (** submitted - completed - failed - shed - outstanding; the
          supervision contract keeps this at 0 after a drain, under any
          fault *)
}

val disposition : t -> disposition
