(* A serving request and its lifecycle.

   Requests are submitted against a named model with per-request
   parameter bindings at batch 1; the runtime owns everything else
   (shared weights, batching, compilation, execution).  Every submitted
   request resolves to exactly one [outcome]: served, structurally
   rejected/shed ([Overloaded] - the admission-control contract, never
   an unbounded queue), or failed after the degradation ladder ran dry.
   Timestamps are wall-clock microseconds ([Unix.gettimeofday *. 1e6]),
   matching the obs layer's latency histograms. *)

open Astitch_tensor

type overload =
  | Queue_full  (** rejected at submission: the bounded queue is at depth *)
  | Deadline_exceeded  (** shed at dispatch: waited past its deadline *)
  | Shutting_down  (** rejected at submission: the server is draining *)
  | Breaker_open
      (** rejected fast: the model's circuit breaker is open after
          consecutive batch failures *)
  | Displaced
      (** shed from the queue: a full queue made room for an arriving
          higher-SLO-class request by evicting this newest lower-class
          entry *)

let overload_to_string = function
  | Queue_full -> "queue-full"
  | Deadline_exceeded -> "deadline-exceeded"
  | Shutting_down -> "shutting-down"
  | Breaker_open -> "breaker-open"
  | Displaced -> "displaced"

type outcome =
  | Done of {
      outputs : Tensor.t list;
      latency_us : float;  (** submission to completion *)
      batch : int;  (** exact batch size this request was served at *)
      degraded : bool;  (** served on the per-request fallback path *)
    }
  | Overloaded of overload
  | Failed of string

type t = {
  id : int;
  model : string;
  params : (string * Tensor.t) list;  (** per-request bindings, batch 1 *)
  submitted_us : float;
  deadline_us : float option;  (** absolute; [None] = wait forever *)
  mutable attempts : int;
      (** batch executions this request has been part of that failed;
          supervision re-dispatches until the retry budget is spent *)
  trace : Astitch_obs.Trace.context;
      (** minted on the submitting thread; links this request's spans
          across domains via flow arrows (null when tracing is off) *)
  mutable dispatched_us : float;
      (** stamped when the scheduler hands the request to a worker (last
          attempt wins); 0 until first dispatch.  Splits queue wait from
          the on-worker phases in the latency decomposition. *)
}

let expired ~now_us t =
  match t.deadline_us with None -> false | Some d -> now_us > d
