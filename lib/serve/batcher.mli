(** Continuous-batching policy: when to dispatch, and how many.

    Pure decision logic over queue state; the scheduler acts on it.
    Dispatched batches are exactly the pending requests (capped at
    [max_batch]) - sizes are not quantised and nothing is padded. *)

type policy

val policy : max_batch:int -> max_wait_us:float -> policy
val max_wait_us : policy -> float
val max_batch : policy -> int

val poll_interval_us : policy -> float
(** Timeout for a worker waiting out an open batching window:
    [max_wait_us / 4] clamped to [50, 200] us.  Bounds how long window
    expiry can go unnoticed; queue events bypass it entirely via the
    scheduler's wake pipe. *)

type decision = Dispatch of int  (** dequeue this many now *) | Wait

val decide :
  policy -> pending:int -> oldest_wait_us:float -> draining:bool -> decision
(** Dispatch on a full batch, an expired batching window
    ([oldest_wait_us] >= [max_wait_us]), or a draining server. *)
