(** Dynamic-batching policy: when to dispatch, and at what bucket.

    Pure decision logic over queue state; the scheduler acts on it. *)

type policy

val policy : max_batch:int -> max_wait_us:float -> policy
val max_wait_us : policy -> float
val max_batch : policy -> int

val bucket : policy -> int -> int
(** Smallest power of two >= the request count, capped at [max_batch] -
    the executor-context granularity the worker pool compiles for. *)

val buckets : policy -> int list
(** Every bucket the policy can produce: [1; 2; 4; ...; max_batch]. *)

val poll_interval_us : policy -> float
(** Polling interval for an open batching window: [max_wait_us / 4]
    clamped to [50, 200] us.  Bounds how long a dispatch-worthy event
    (window expiry, shutdown) can go unnoticed by a polling worker. *)

type decision = Dispatch of int  (** dequeue this many now *) | Wait

val decide :
  policy -> pending:int -> oldest_wait_us:float -> draining:bool -> decision
(** Dispatch on a full batch, an expired batching window
    ([oldest_wait_us] >= [max_wait_us]), or a draining server. *)
