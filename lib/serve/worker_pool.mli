(** Domain worker pool: executes scheduled batches on pooled contexts,
    under supervision.

    Workers are OCaml 5 domains looping on [Scheduler.next_batch].
    Executor contexts are pooled PER MODEL: a batch-axis-analyzable
    builder compiles once at [max_batch] into a shape-polymorphic
    context that executes any batch size by prefix rebinding
    ([Executor.run_context ~batch]) - zero padded rows, zero
    recompilation.  Builders the analysis rejects fall back to
    fixed-extent serving (one context per exact batch size, still
    unpadded).  Contexts are not concurrent-safe, so each is owned by
    one worker for the duration of one batch.

    A monitor domain restarts dead workers (exponential backoff) and
    steals batches from wedged ones (stale heartbeat past the wedge
    timeout); a failing or fault-poisoned batch quarantines its context,
    evicts the plan behind it from the compile cache, and re-dispatches
    its requests solo under a per-request retry budget, falling back to
    resilient per-request execution when the budget is spent.  The pool
    never crashes the server and never loses a request. *)

open Astitch_ir
open Astitch_tensor
open Astitch_runtime

type mode =
  | Symbolic of Batch_axis.plan
      (** one context compiled at [max_batch] serves every size *)
  | Fixed  (** one context per exact batch size *)

type model_state = {
  spec : Batching.spec;
  shared : (string * Tensor.t) list;  (** weight bindings, fixed at load *)
  max_batch : int;
  mu : Mutex.t;  (** guards [mode] and both free lists *)
  mutable mode : mode;
      (** decided at load from [Batch_axis.analyze]; demoted to [Fixed]
          if the compiled context can't rebind *)
  sym_ctxs : Executor.context list ref;
  fixed_ctxs : (int, Executor.context list ref) Hashtbl.t;
}

type t

val create :
  scheduler:Scheduler.t ->
  models:(string, model_state) Hashtbl.t ->
  cache:Session.cache ->
  arch:Astitch_simt.Arch.t ->
  fused:bool ->
  verify_every:int ->
  retry_budget:int ->
  wedge_timeout_us:float ->
  restart_backoff_us:float ->
  workers:int ->
  t
(** Spawn [workers] domains (plus one monitor domain when
    [workers > 0]) immediately.  [workers = 0] is caller-runs mode: no
    domains; progress is made by [pump]/[await_pumping] on the calling
    thread.  [verify_every] > 0 re-executes the first request of every
    n-th batch alone and asserts the batched outputs are bit-identical
    (a serving self-check; 0 disables).  [retry_budget] is how many
    failed batch executions a request survives before dropping to the
    per-request fallback rung.  A worker whose heartbeat goes stale for
    [wedge_timeout_us] with a batch in hand is wedged (batch stolen);
    a dead worker is respawned after [restart_backoff_us], doubling per
    consecutive death (capped at 128x). *)

val pump : t -> unit
(** Caller-runs mode: serve every dispatchable batch on the calling
    domain (parking out open batching windows on the scheduler's wake
    pipe) until the queue is empty.  Safe alongside worker domains too -
    it just competes for batches. *)

val await_pumping : t -> int -> Request.outcome
(** Caller-runs [Scheduler.await]: pump batches on the calling domain
    until the outcome for the given request id lands; consumes it.
    Raises [Invalid_argument] for an unknown or already-consumed id
    once nothing is outstanding. *)

val join : t -> unit
(** Block until the monitor and every worker exit.  Call after
    [Scheduler.shutdown]. *)

val warm : t -> unit
(** Pre-compile every model (hide compile latency from the first
    requests): one max-batch context for a symbolic model, batch-1 and
    max-batch contexts for a fixed-extent one. *)

val padded_rows : t -> int
(** Padded rows executed so far.  Continuous batching packs every batch
    at its exact size, so this reads 0; it stays wired to the actual
    pack extent so any regression surfaces. *)

val plan_compiles : t -> int
(** Plan compiles performed at context checkout (shared-cache misses
    and bypasses).  One per symbolic model in steady state. *)

val plan_cache : t -> Astitch_runtime.Session.cache
(** The shared session cache behind every checkout.  Exposed so zoo
    prewarming can seed it with store-loaded plans (checkouts then hit
    instead of compiling) and persist it on shutdown. *)

val context_counts : t -> (string * int) list
(** Free pooled contexts per model, sorted by name - symbolic and
    fixed-extent together.  A drained single-worker server holds
    exactly 1 per symbolic model. *)

type supervision = {
  restarts : int;  (** worker domains respawned after a death *)
  quarantined : int;  (** contexts retired after a fault-touched batch *)
  wedged : int;  (** batches stolen from stalled workers *)
  workers_alive : int;
}

val supervision : t -> supervision
