(** Domain worker pool: executes scheduled batches on pooled contexts.

    Workers are OCaml 5 domains looping on [Scheduler.next_batch].
    Executor contexts are pooled per (model x bucket) - contexts are not
    concurrent-safe, so each is owned by one worker for the duration of
    one batch.  A failing batch degrades to per-request execution
    through the resilient compile ladder; the pool never crashes the
    server. *)

open Astitch_tensor
open Astitch_runtime

type model_state = {
  spec : Batching.spec;
  shared : (string * Tensor.t) list;  (** weight bindings, fixed at load *)
  mu : Mutex.t;
  contexts : (int, Executor.context list ref) Hashtbl.t;
}

type t

val create :
  scheduler:Scheduler.t ->
  models:(string, model_state) Hashtbl.t ->
  cache:Session.cache ->
  arch:Astitch_simt.Arch.t ->
  fused:bool ->
  verify_every:int ->
  workers:int ->
  t
(** Spawn [workers] domains immediately.  [workers = 0] is caller-runs
    mode: no domains; progress is made by [pump]/[await_pumping] on the
    calling thread.  [verify_every] > 0 re-executes the first request of
    every n-th batch alone and asserts the batched outputs are
    bit-identical (a serving self-check; 0 disables). *)

val pump : t -> unit
(** Caller-runs mode: serve every dispatchable batch on the calling
    domain (sleeping out open batching windows) until the queue is
    empty.  Safe alongside worker domains too - it just competes for
    batches. *)

val await_pumping : t -> int -> Request.outcome
(** Caller-runs [Scheduler.await]: pump batches on the calling domain
    until the outcome for the given request id lands; consumes it.
    Raises [Invalid_argument] for an unknown or already-consumed id
    once nothing is outstanding. *)

val join : t -> unit
(** Block until every worker exits.  Call after [Scheduler.shutdown]. *)

val warm : t -> buckets:int list -> unit
(** Pre-compile the given buckets for every model (hide compile latency
    from the first requests). *)
