(** Request scheduler: bounded admission, deadline shedding, and
    batch dispatch to the worker pool.

    Safe for concurrent use from any number of submitter threads and
    worker domains.  [submit] is the admission-control line: it either
    admits the request (an outcome will eventually appear under its id)
    or returns the structured overload synchronously. *)

type t

type batch = {
  model : string;
  requests : Request.t list;
      (** FIFO, length in [1, max_batch]; executed at exactly this
          size - nothing is padded *)
}

val create :
  ?breaker_threshold:int ->
  ?breaker_cooldown_us:float ->
  ?slos:(string * Slo.t) list ->
  ?fair_share_floor:float ->
  policy:Batcher.policy ->
  queue_depth:int ->
  unit ->
  t
(** [breaker_threshold] (default 4) is the consecutive-batch-failure
    count that opens a model's circuit breaker; [0] disables breakers.
    [breaker_cooldown_us] (default 5000) is how long an open breaker
    refuses before admitting a half-open probe.

    [slos] switches the scheduler into multi-tenant mode: per-model SLO
    classes drive strict class priority (Latency > Throughput >
    Best_effort), earliest-deadline-first inside the Latency class, and
    displacement shedding (a full queue evicts the newest lowest-class
    entry - completed as [Overloaded Displaced] - to admit a
    higher-class arrival).  With [slos = []] (default) scheduling is
    the legacy oldest-head FIFO, unchanged.

    [fair_share_floor] (default 0.125, multi-tenant mode only) reserves
    every [round(1/floor)]-th dispatch for the least-served model
    regardless of class, so Best_effort keeps making progress under
    sustained overload; [0.] disables the floor (pure strict priority).
    @raise Invalid_argument outside [0, 0.5]. *)

val submit : t -> Request.t -> (unit, Request.overload) result
(** Admit or refuse.  Refusals ([Queue_full], [Shutting_down],
    [Breaker_open], and [Deadline_exceeded] for a request whose
    deadline is already past on arrival) never occupy queue space and
    never produce an outcome entry.  Admission-time deadline refusals
    are counted as rejections plus [shed_admission] (and tick the
    [serve.shed] / [serve.shed_admission] metrics). *)

val requeue : t -> Request.t -> unit
(** Re-admit a request from a failed batch for a solo re-dispatch.
    Bypasses admission control (the request is already admitted and
    counted in [outstanding]) and never refuses - losing a retried
    request is not an option. *)

val next_batch : t -> batch option
(** Worker entry point: block until a batch is ready.  Sheds expired
    requests (completing them as [Overloaded Deadline_exceeded]) before
    each pick.  [None] means the scheduler is shut down and drained -
    the worker should exit. *)

val try_next_batch : t -> [ `Batch of batch | `Waiting | `Empty ]
(** Non-blocking [next_batch] for caller-runs pumping.  [`Waiting]
    means requests are pending but every batching window is still
    open; the caller should [wait_poll] and retry. *)

val poll_interval_s : t -> float
(** The batching-window poll timeout (max_wait/4 clamped to
    [50us, 200us]) - the longest [wait_poll] parks before re-checking. *)

val wait_poll : t -> unit
(** Park for at most one poll tick, or until a wake event (a batch
    filling to [max_batch], a retry, a drain, shutdown) cuts the wait
    short via the scheduler's internal wake pipe.  May return
    spuriously; callers re-evaluate the queue either way. *)

val dispose : t -> unit
(** Close the wake pipe.  Call only once no worker can be parked in
    [wait_poll] (after the pool has joined).  Idempotent. *)

val outstanding : t -> int
(** Admitted requests whose outcome has not yet been recorded. *)

val complete : t -> Request.t -> Request.outcome -> unit
(** Record the outcome for an admitted request and wake waiters.
    Idempotent, first-wins: completing an already-resolved request is
    counted as a duplicate and otherwise ignored, so wedge-steal
    double execution can't corrupt the accounting.  The winning
    completion terminates the request's flow arrow. *)

val note_batch_result : t -> model:string -> ok:bool -> unit
(** Feed a batch execution result to [model]'s circuit breaker:
    [breaker_threshold] consecutive failures open it, a success closes
    it, a failed half-open probe re-opens it for another cooldown. *)

val breaker_state : t -> string -> [ `Closed | `Open | `Half_open ]
(** Current breaker state for a model ([`Closed] if never tripped). *)

val breaker_state_to_string : [ `Closed | `Open | `Half_open ] -> string

val await : t -> int -> Request.outcome
(** Block until the outcome for [id] lands; consumes the entry. *)

val poll : t -> int -> Request.outcome option
(** Non-blocking [await]; consumes the entry when present. *)

val drain : t -> unit
(** Flush: refuse new submissions, dispatch pending work immediately,
    block until nothing is outstanding, then accept again. *)

val drain_with : t -> pump:(unit -> unit) -> unit
(** [drain] for caller-runs mode: after the drain flag is raised (so
    the batcher stops holding windows open and submitters are refused),
    [pump] runs on the calling thread to execute the backlog, then the
    drain completes once nothing is outstanding. *)

val shutdown : t -> unit
(** Stop accepting and let workers exit once the queue empties. *)

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  shed_admission : int;
      (** refused at submit with a deadline already past (also counted
          in [rejected]: never admitted, so the disposition ledger
          still balances) *)
  displaced : int;
      (** queued lower-class requests evicted by displacement shedding
          (also counted in [shed]: they complete as [Overloaded]) *)
  floor_picks : int;  (** dispatches taken by the fair-share floor *)
  completed : int;
  failed : int;
  degraded : int;
  batches : int;
  outstanding : int;
  queue_depth : int;
  max_depth_seen : int;
  retried : int;  (** failed-batch requests re-dispatched solo *)
  duplicates : int;  (** completions dropped by first-wins *)
  breaker_opens : int;
  breaker_closes : int;
}

val stats : t -> stats
