(* The serving front end: load models, submit requests, get outcomes.

   [create] analyzes every registered builder for batchability, fixes
   its shared weights deterministically from the config seed (a served
   model's weights do not change between requests - only per-request
   parameters do), and spins up the scheduler plus worker pool.  Each
   builder is also classified for SHAPE POLYMORPHISM
   ([Batch_axis.analyze], cross-checked at [max_batch] by
   [validate_at]): a symbolic model compiles one plan at [max_batch]
   and serves every batch size 1..max on that single context by prefix
   rebinding; a rejected one (batch axis not outermost, etc.) serves
   fixed-extent contexts per exact size.  Either way batches execute at
   exactly their request count - no padded rows.  After that the
   surface is small: [submit]/[submit_async] with per-request bindings,
   [drain] to flush, [shutdown] to stop, [stats] to look.

   Admission control is the submit path: a request either comes back
   with a ticket (its outcome will land) or with the structured
   [Request.overload] - the server never queues beyond [queue_depth]
   and never blocks a submitter on a full queue. *)

open Astitch_ir
open Astitch_runtime
open Astitch_obs

type model = { name : string; build : batch:int -> Graph.t }

type config = {
  workers : int;
  max_batch : int;
  max_wait_us : float;  (** batching window *)
  queue_depth : int;  (** admission-control bound, across models *)
  default_deadline_us : float option;  (** relative; [None] = no deadline *)
  arch : Astitch_simt.Arch.t;
  fused : bool;
  cache_capacity : int;
  verify_every : int;  (** bit-identity spot checks; 0 = off *)
  seed : int;  (** shared-weight generation *)
  retry_budget : int;  (** failed-batch re-dispatches per request *)
  breaker_threshold : int;  (** consecutive failures to open; 0 = off *)
  breaker_cooldown_us : float;  (** open-breaker fast-reject window *)
  wedge_timeout_us : float;  (** stale-heartbeat bound mid-batch *)
  restart_backoff_us : float;  (** base worker-respawn delay *)
  slos : (string * Slo.t) list;
      (** per-model SLO classes; non-empty switches the scheduler into
          multi-tenant class-priority mode *)
  fair_share_floor : float;
      (** fraction of dispatches reserved for the least-served model
          (multi-tenant mode); 0 = pure strict priority *)
}

let default_config =
  {
    workers = 2;
    max_batch = 8;
    max_wait_us = 2_000.;
    queue_depth = 64;
    default_deadline_us = None;
    arch = Astitch_simt.Arch.v100;
    fused = true;
    cache_capacity = 64;
    verify_every = 0;
    seed = 42;
    retry_budget = 2;
    breaker_threshold = 4;
    breaker_cooldown_us = 5_000.;
    wedge_timeout_us = 50_000.;
    restart_backoff_us = 1_000.;
    slos = [];
    fair_share_floor = 0.125;
  }

type t = {
  config : config;
  scheduler : Scheduler.t;
  pool : Worker_pool.t;
  models : (string, Worker_pool.model_state) Hashtbl.t;
  slos : (string, Slo.t) Hashtbl.t;
  next_id : int Atomic.t;
  mutable closed : bool;
}

(* A stable per-model seed offset so two models in one server don't get
   identical weights. *)
let model_seed ~seed name =
  seed + (Hashtbl.hash name land 0xffff)

(* Decide whether a builder family can be served shape-polymorphically:
   the node-level batch-axis classification must succeed on the {1,2}
   diff AND hold at [max_batch] (catching locally-linear families).
   Rejected families are served fixed-extent - correct either way, just
   one compile per distinct batch size instead of one per model. *)
let decide_mode ~max_batch (m : model) =
  let g1 = m.build ~batch:1 and g2 = m.build ~batch:2 in
  match Batch_axis.analyze ~g1 ~g2 with
  | Error _ -> Worker_pool.Fixed
  | Ok cls -> (
      if max_batch <= 2 then
        Worker_pool.Symbolic { Batch_axis.max_batch; cls }
      else
        match
          Batch_axis.validate_at cls ~base:g1
            ~at:(m.build ~batch:max_batch)
            ~batch:max_batch
        with
        | Ok () -> Worker_pool.Symbolic { Batch_axis.max_batch; cls }
        | Error _ -> Worker_pool.Fixed)

let create ?(config = default_config) models =
  if models = [] then invalid_arg "Serve.create: no models";
  if config.workers < 0 then invalid_arg "Serve.create: workers must be >= 0";
  if config.max_batch < 1 then
    invalid_arg "Serve.create: max_batch must be >= 1";
  let table = Hashtbl.create (List.length models) in
  List.iter
    (fun m ->
      if Hashtbl.mem table m.name then
        invalid_arg (Printf.sprintf "Serve.create: duplicate model %s" m.name);
      let spec = Batching.analyze (fun b -> m.build ~batch:b) in
      let shared =
        Batching.random_shared spec ~seed:(model_seed ~seed:config.seed m.name)
      in
      Hashtbl.add table m.name
        {
          Worker_pool.spec;
          shared;
          max_batch = config.max_batch;
          mu = Mutex.create ();
          mode = decide_mode ~max_batch:config.max_batch m;
          sym_ctxs = ref [];
          fixed_ctxs = Hashtbl.create 4;
        })
    models;
  let policy =
    Batcher.policy ~max_batch:config.max_batch ~max_wait_us:config.max_wait_us
  in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem table name) then
        invalid_arg
          (Printf.sprintf "Serve.create: SLO for unregistered model %s" name))
    config.slos;
  let scheduler =
    Scheduler.create ~breaker_threshold:config.breaker_threshold
      ~breaker_cooldown_us:config.breaker_cooldown_us ~slos:config.slos
      ~fair_share_floor:config.fair_share_floor ~policy
      ~queue_depth:config.queue_depth ()
  in
  let cache = Session.make_cache ~capacity:config.cache_capacity () in
  let pool =
    Worker_pool.create ~scheduler ~models:table ~cache ~arch:config.arch
      ~fused:config.fused ~verify_every:config.verify_every
      ~retry_budget:config.retry_budget
      ~wedge_timeout_us:config.wedge_timeout_us
      ~restart_backoff_us:config.restart_backoff_us ~workers:config.workers
  in
  let slo_table = Hashtbl.create 8 in
  List.iter (fun (m, s) -> Hashtbl.replace slo_table m s) config.slos;
  {
    config;
    scheduler;
    pool;
    models = table;
    slos = slo_table;
    next_id = Atomic.make 1;
    closed = false;
  }

let model_state t name =
  match Hashtbl.find_opt t.models name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Serve: unknown model %s" name)

let spec t ~model = (model_state t model).Worker_pool.spec

(* True when [model] serves every batch size off one max-batch context
   (the shape-polymorphic path); false for fixed-extent fallback. *)
let symbolic t ~model =
  let m = model_state t model in
  Mutex.lock m.Worker_pool.mu;
  let r =
    match m.Worker_pool.mode with
    | Worker_pool.Symbolic _ -> true
    | Worker_pool.Fixed -> false
  in
  Mutex.unlock m.Worker_pool.mu;
  r

let warm t = Worker_pool.warm t.pool
let plan_cache t = Worker_pool.plan_cache t.pool

(* A ticket names an admitted request; redeem it with [await]. *)
type ticket = int

let submit_async ?deadline_us t ~model ~params =
  ignore (model_state t model);
  let now = Unix.gettimeofday () *. 1e6 in
  (* Deadline precedence: explicit per-request > the model's SLO-class
     default (Latency class carries one) > the server-wide default. *)
  let rel =
    match deadline_us with
    | Some _ as d -> d
    | None -> (
        match Hashtbl.find_opt t.slos model with
        | Some slo -> (
            match Slo.default_deadline_us slo with
            | Some _ as d -> d
            | None -> t.config.default_deadline_us)
        | None -> t.config.default_deadline_us)
  in
  let id = Atomic.fetch_and_add t.next_id 1 in
  (* Admission runs inside a client-thread span; the request's trace
     context is minted under it, so the flow arrow leaves from here and
     lands in whatever worker-domain span serves the request. *)
  let sid =
    if Trace.active () then
      Trace.span_begin ~phase:"serve" "submit"
        ~attrs:[ ("model", Trace.Str model); ("id", Trace.Int id) ]
    else 0
  in
  let trace = Trace.new_context () in
  let req =
    {
      Request.id;
      model;
      params;
      submitted_us = now;
      deadline_us = Option.map (fun d -> now +. d) rel;
      attempts = 0;
      trace;
      dispatched_us = 0.;
    }
  in
  if Trace.active () then
    Trace.flow_start ~phase:"serve" trace "request"
      ~attrs:[ ("id", Trace.Int id); ("model", Trace.Str model) ];
  let res = Scheduler.submit t.scheduler req in
  (match res with
  | Ok () -> ()
  | Error o ->
      (* A refusal never reaches the scheduler's completion path, so
         the flow must terminate here or the "s" arrow dangles. *)
      if Trace.active () then
        Trace.flow_end ~phase:"serve" trace "request"
          ~attrs:
            [
              ("id", Trace.Int id);
              ("outcome", Trace.Str (Request.overload_to_string o));
            ]);
  Trace.span_end sid;
  match res with Ok () -> Ok id | Error o -> Error o

(* [workers = 0] is caller-runs mode: no worker domains exist, so the
   thread that wants an outcome executes batches itself. *)
let inline t = t.config.workers = 0

let await t ticket =
  if inline t then Worker_pool.await_pumping t.pool ticket
  else Scheduler.await t.scheduler ticket

let poll t ticket = Scheduler.poll t.scheduler ticket

let submit ?deadline_us t ~model ~params =
  match submit_async ?deadline_us t ~model ~params with
  | Ok ticket -> await t ticket
  | Error o -> Request.Overloaded o

(* Deterministic per-request bindings: what the CLI generator and the
   benches feed the server. *)
let random_request t ~model ~seed =
  Batching.random_request (spec t ~model) ~seed

(* The weights the server bound at load time - what a reference
   (solo) execution must use to reproduce served outputs. *)
let shared_weights t ~model = (model_state t model).Worker_pool.shared

let drain t =
  if inline t then
    Scheduler.drain_with t.scheduler ~pump:(fun () -> Worker_pool.pump t.pool)
  else Scheduler.drain t.scheduler

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    drain t;
    Scheduler.shutdown t.scheduler;
    Worker_pool.join t.pool;
    (* all workers have joined: nobody can be parked on the wake pipe *)
    Scheduler.dispose t.scheduler
  end

type stats = {
  submitted : int;
  rejected : int;
  shed : int;
  shed_admission : int;
  displaced : int;
  floor_picks : int;
  completed : int;
  failed : int;
  degraded : int;
  batches : int;
  padded_rows : int;
      (** rows executed beyond real requests; 0 under continuous
          batching *)
  plan_compiles : int;  (** plan compiles at context checkout *)
  outstanding : int;
  queue_depth : int;
  max_depth_seen : int;
  retried : int;
  duplicates : int;
  breaker_opens : int;
  breaker_closes : int;
}

let stats t =
  let s = Scheduler.stats t.scheduler in
  {
    submitted = s.Scheduler.submitted;
    rejected = s.Scheduler.rejected;
    shed = s.Scheduler.shed;
    shed_admission = s.Scheduler.shed_admission;
    displaced = s.Scheduler.displaced;
    floor_picks = s.Scheduler.floor_picks;
    completed = s.Scheduler.completed;
    failed = s.Scheduler.failed;
    degraded = s.Scheduler.degraded;
    batches = s.Scheduler.batches;
    padded_rows = Worker_pool.padded_rows t.pool;
    plan_compiles = Worker_pool.plan_compiles t.pool;
    outstanding = s.Scheduler.outstanding;
    queue_depth = s.Scheduler.queue_depth;
    max_depth_seen = s.Scheduler.max_depth_seen;
    retried = s.Scheduler.retried;
    duplicates = s.Scheduler.duplicates;
    breaker_opens = s.Scheduler.breaker_opens;
    breaker_closes = s.Scheduler.breaker_closes;
  }

let context_pool_sizes t = Worker_pool.context_counts t.pool

type supervision = Worker_pool.supervision = {
  restarts : int;
  quarantined : int;
  wedged : int;
  workers_alive : int;
}

let supervision t = Worker_pool.supervision t.pool
let breaker_state t ~model = Scheduler.breaker_state t.scheduler model

(* The per-run request ledger: where every admitted request ended up.
   [lost] is the difference between what went in and what came out -
   the supervision contract is that it is always 0 once the server is
   drained, under any fault. *)
type disposition = {
  served : int;
  d_degraded : int;
  d_failed : int;
  overloaded : int;
  d_rejected : int;
  lost : int;
}

let disposition t =
  let s = stats t in
  {
    served = s.completed;
    d_degraded = s.degraded;
    d_failed = s.failed;
    overloaded = s.shed;
    d_rejected = s.rejected;
    lost = s.submitted - s.completed - s.failed - s.shed - s.outstanding;
  }

(* Per-phase latency attribution.  The five phase histograms telescope:
   for every completed request queue + batch_wait + pack + exec + unpack
   equals its end-to-end serve.request_us sample (same stamps), so the
   blame table's per-phase totals reconcile with the latency total. *)
type phase_latency = {
  phase : string;
  count : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

let phase_names =
  [ "queue"; "batch_wait"; "pack"; "exec"; "unpack"; "request" ]

let latency_breakdown () =
  let r = Metrics.default in
  List.map
    (fun phase ->
      let h = Metrics.histogram r ("serve." ^ phase ^ "_us") in
      {
        phase;
        count = Metrics.hist_count h;
        mean_us = Metrics.hist_mean h;
        p50_us = Metrics.quantile h 0.50;
        p95_us = Metrics.quantile h 0.95;
        p99_us = Metrics.quantile h 0.99;
        max_us = Metrics.hist_max h;
      })
    phase_names

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "submitted %d  completed %d  degraded %d  failed %d  rejected %d  shed %d@ \
     shed-at-admission %d  displaced %d  floor picks %d@ \
     batches %d  padded rows %d  plan compiles %d  outstanding %d  queue %d \
     (max %d)@ \
     retried %d  duplicates %d  breaker open/close %d/%d"
    s.submitted s.completed s.degraded s.failed s.rejected s.shed
    s.shed_admission s.displaced s.floor_picks s.batches
    s.padded_rows s.plan_compiles s.outstanding s.queue_depth s.max_depth_seen
    s.retried s.duplicates s.breaker_opens s.breaker_closes
