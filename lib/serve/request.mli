(** A serving request and its lifecycle. *)

open Astitch_tensor

type overload =
  | Queue_full  (** rejected at submission: the bounded queue is at depth *)
  | Deadline_exceeded  (** shed at dispatch: waited past its deadline *)
  | Shutting_down  (** rejected at submission: the server is draining *)
  | Breaker_open
      (** rejected fast: the model's circuit breaker is open after
          consecutive batch failures *)
  | Displaced
      (** shed from the queue: a full queue made room for an arriving
          higher-SLO-class request by evicting this newest lower-class
          entry (multi-tenant scheduling only) *)

val overload_to_string : overload -> string

type outcome =
  | Done of {
      outputs : Tensor.t list;
      latency_us : float;  (** submission to completion *)
      batch : int;  (** exact batch size this request was served at *)
      degraded : bool;  (** served on the per-request fallback path *)
    }
  | Overloaded of overload
      (** the structured admission-control result: the request was never
          executed, by design, instead of queuing without bound *)
  | Failed of string  (** the degradation ladder ran dry for this request *)

type t = {
  id : int;
  model : string;
  params : (string * Tensor.t) list;  (** per-request bindings, batch 1 *)
  submitted_us : float;  (** wall-clock microseconds *)
  deadline_us : float option;  (** absolute; [None] = wait forever *)
  mutable attempts : int;
      (** failed batch executions so far; supervision re-dispatches
          until the retry budget is spent, then falls back per-request *)
  trace : Astitch_obs.Trace.context;
      (** minted on the submitting thread; links this request's spans
          across domains via flow arrows (null when tracing is off) *)
  mutable dispatched_us : float;
      (** stamped at scheduler dispatch (last attempt wins); 0 until
          first dispatch.  Queue wait = [dispatched_us - submitted_us]
          in the latency decomposition. *)
}

val expired : now_us:float -> t -> bool
