(* Dynamic-batching policy: when to dispatch, and at what bucket size.

   Pure decision logic - the scheduler feeds it queue state under its
   lock and acts on the verdict.  Batch sizes are quantised to power-of-
   two buckets {1, 2, 4, ..., max_batch} so the worker pool compiles and
   reuses one executor context per (model x bucket) instead of one per
   arbitrary batch size; tail batches pad up to their bucket.

   Dispatch fires when any of:
     - a full [max_batch] is waiting (no reason to wait longer);
     - the oldest pending request has waited [max_wait_us] (bounds the
       latency cost of batching: a lone request is never held past the
       batching window);
     - the server is draining (flush everything now). *)

type policy = { max_batch : int; max_wait_us : float }

let policy ~max_batch ~max_wait_us =
  if max_batch < 1 then invalid_arg "Batcher.policy: max_batch must be >= 1";
  if max_wait_us < 0. then
    invalid_arg "Batcher.policy: max_wait_us must be >= 0";
  { max_batch; max_wait_us }

let max_wait_us p = p.max_wait_us
let max_batch p = p.max_batch

(* Smallest power of two >= [n], capped at [max_batch]. *)
let bucket p n =
  if n < 1 then invalid_arg "Batcher.bucket: n must be >= 1";
  let rec up b = if b >= n then b else up (2 * b) in
  Stdlib.min p.max_batch (up 1)

let buckets p =
  let rec go b acc = if b > p.max_batch then List.rev acc else go (2 * b) (b :: acc) in
  go 1 []

(* How often the scheduler should re-examine an open batching window.
   Stdlib condition variables have no timed wait, so workers poll; the
   interval is a quarter of the window, clamped to [50, 200] us.  The
   clamp bounds both sides: never so fine that polling burns a core on
   tiny windows, never so coarse that shutdown or a filling batch waits
   more than 200 us past the event (the promptness contract the
   scheduler's stop check relies on). *)
let poll_interval_us p =
  Float.min 200. (Float.max 50. (p.max_wait_us /. 4.))

type decision = Dispatch of int  (** dequeue this many now *) | Wait

let decide p ~pending ~oldest_wait_us ~draining =
  if pending <= 0 then Wait
  else if pending >= p.max_batch then Dispatch p.max_batch
  else if draining || oldest_wait_us >= p.max_wait_us then Dispatch pending
  else Wait
