(* Continuous-batching policy: when to dispatch, and how many.

   Pure decision logic - the scheduler feeds it queue state under its
   lock and acts on the verdict.  Batches are NOT quantised: a dispatch
   takes exactly the requests that are waiting (capped at [max_batch]),
   and the worker pool executes that exact size against one
   shape-polymorphic context per model, so no padded rows ever run.

   Dispatch fires when any of:
     - a full [max_batch] is waiting (no reason to wait longer);
     - the oldest pending request has waited [max_wait_us] (bounds the
       latency cost of batching: a lone request is never held past the
       batching window);
     - the server is draining (flush everything now). *)

type policy = { max_batch : int; max_wait_us : float }

let policy ~max_batch ~max_wait_us =
  if max_batch < 1 then invalid_arg "Batcher.policy: max_batch must be >= 1";
  if max_wait_us < 0. then
    invalid_arg "Batcher.policy: max_wait_us must be >= 0";
  { max_batch; max_wait_us }

let max_wait_us p = p.max_wait_us
let max_batch p = p.max_batch

(* How often the scheduler should re-examine an open batching window.
   Stdlib condition variables have no timed wait, so workers wait on the
   scheduler's wake pipe with this timeout; the interval is a quarter of
   the window, clamped to [50, 200] us.  The clamp bounds both sides:
   never so fine that polling burns a core on tiny windows, never so
   coarse that window expiry waits more than 200 us past the event.
   (Queue events - a filling batch, drain, shutdown - don't pay even
   that: they write the wake pipe and the select returns at once.) *)
let poll_interval_us p =
  Float.min 200. (Float.max 50. (p.max_wait_us /. 4.))

type decision = Dispatch of int  (** dequeue this many now *) | Wait

let decide p ~pending ~oldest_wait_us ~draining =
  if pending <= 0 then Wait
  else if pending >= p.max_batch then Dispatch p.max_batch
  else if draining || oldest_wait_us >= p.max_wait_us then Dispatch pending
  else Wait
