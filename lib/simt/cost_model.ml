(* Analytical kernel-time model.

   Roofline style: a kernel's steady-state time is the max of its DRAM
   time and its instruction-issue time, both derated by how well the
   launch configuration occupies the machine; fixed overheads (driver
   launch, in-kernel global barriers) are added on top.  The absolute
   numbers are not meant to match the authors' testbed; the *structure*
   is what the experiments exercise: kernel count x launch overhead,
   DRAM traffic saved by on-chip buffering, redundant-recompute
   instruction inflation, and occupancy/wave effects of thread mappings. *)

type work = {
  dram_read_bytes : int;
  dram_write_bytes : int;
  fp32_insts : int;
  atomic_insts : int;
  num_barriers : int; (* in-kernel global barriers *)
}

let no_work =
  {
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    fp32_insts = 0;
    atomic_insts = 0;
    num_barriers = 0;
  }

let add_work a b =
  {
    dram_read_bytes = a.dram_read_bytes + b.dram_read_bytes;
    dram_write_bytes = a.dram_write_bytes + b.dram_write_bytes;
    fp32_insts = a.fp32_insts + b.fp32_insts;
    atomic_insts = a.atomic_insts + b.atomic_insts;
    num_barriers = a.num_barriers + b.num_barriers;
  }

type config = {
  kernel_launch_overhead_us : float;
      (* driver + runtime cost per kernel launch *)
  kernel_fixed_us : float; (* in-kernel prologue/drain floor *)
  framework_op_overhead_us : float;
      (* per-operator scheduling cost paid by the framework executor for
         every kernel it dispatches (large for TF, small for compiled
         executors) *)
  memcpy_overhead_us : float; (* per cudaMemcpy/Memset call *)
  occupancy_saturation : float;
      (* occupancy at which DRAM bandwidth saturates *)
  atomic_inst_equiv : int; (* fp32-instruction equivalents per atomic *)
  compute_efficiency : float; (* sustained/peak issue rate for codegen *)
  library_compute_efficiency : float; (* cuBLAS/cuDNN sustained/peak *)
}

let default_config =
  {
    kernel_launch_overhead_us = 10.0;
    kernel_fixed_us = 2.5;
    framework_op_overhead_us = 0.0;
    memcpy_overhead_us = 6.0;
    occupancy_saturation = 0.65;
    atomic_inst_equiv = 12;
    compute_efficiency = 0.6;
    library_compute_efficiency = 0.85;
  }

type estimate = {
  time_us : float; (* total wall time attributed to this kernel *)
  exec_time_us : float; (* on-device execution time *)
  memory_time_us : float;
  compute_time_us : float;
  overhead_us : float; (* launch + framework scheduling *)
  barrier_us : float;
  occupancy : float;
  sm_efficiency : float;
}

(* DRAM transactions are 32-byte sectors, matching nvprof's
   dram_read_transactions / dram_write_transactions. *)
let transactions bytes = (bytes + 31) / 32

let estimate ?(config = default_config) (arch : Arch.t) (l : Launch.t)
    (w : work) : estimate =
  Occupancy.check_launchable arch l;
  if w.num_barriers > 0 then Barrier.check_legal arch l;
  let occupancy = Occupancy.achieved_occupancy arch l in
  let fullness = Occupancy.wave_fullness arch l in
  let occ_eff =
    Float.min 1.0 (Occupancy.theoretical_occupancy arch l /. config.occupancy_saturation)
  in
  let eff = Float.max 0.02 (occ_eff *. fullness) in
  let bw_bytes_per_us = arch.dram_bandwidth_gbs *. 1e3 in
  let memory_time_us =
    float_of_int (w.dram_read_bytes + w.dram_write_bytes)
    /. (bw_bytes_per_us *. eff)
  in
  let insts_per_us = arch.fp32_tflops *. 1e6 *. config.compute_efficiency in
  let total_insts =
    w.fp32_insts + (w.atomic_insts * config.atomic_inst_equiv)
  in
  let compute_time_us = float_of_int total_insts /. (insts_per_us *. eff) in
  let barrier_us =
    float_of_int w.num_barriers *. Barrier.cost_us ~blocks:l.grid
  in
  let exec_time_us =
    Float.max memory_time_us compute_time_us +. config.kernel_fixed_us
    +. barrier_us
  in
  let overhead_us =
    config.kernel_launch_overhead_us +. config.framework_op_overhead_us
  in
  (* SM efficiency: fraction of SM-cycles doing work while the kernel runs;
     dominated by wave fullness, floored by the fixed prologue dilution. *)
  let sm_efficiency =
    fullness *. (Float.max memory_time_us compute_time_us
                 /. Float.max 1e-9 exec_time_us)
  in
  {
    time_us = exec_time_us +. overhead_us;
    exec_time_us;
    memory_time_us;
    compute_time_us;
    overhead_us;
    barrier_us;
    occupancy;
    sm_efficiency = Float.min 1.0 sm_efficiency;
  }

(* Host-side copies/memsets: latency-bound for the small buffers involved. *)
let memcpy_time_us ?(config = default_config) (arch : Arch.t) ~bytes =
  config.memcpy_overhead_us
  +. (float_of_int bytes /. (arch.dram_bandwidth_gbs *. 1e3))
