(* SIMT device descriptors.

   Numbers follow the public data sheets for the GPUs the paper evaluates
   on (V100 primary, T4 for inference, A100 for the compute/bandwidth
   ratio discussion in the introduction). *)

type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_warps_per_sm : int;
  max_threads_per_block : int;
  registers_per_sm : int;
  max_registers_per_thread : int;
  shared_mem_per_sm : int; (* bytes *)
  shared_mem_per_block : int; (* bytes *)
  l2_cache_bytes : int;
  dram_bandwidth_gbs : float; (* GB/s *)
  fp32_tflops : float;
  fp16_tflops : float;
  library_tflops : float;
      (* sustained throughput of vendor-library GEMM/conv kernels at the
         generation's default precision: FP32 on V100/T4, TF32 tensor
         cores on A100 - the source of the paper's "5.6x compute over
         bandwidth" observation *)
  sm_clock_ghz : float;
}

let v100 =
  {
    name = "V100";
    num_sms = 80;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_warps_per_sm = 64;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    shared_mem_per_sm = 96 * 1024;
    shared_mem_per_block = 48 * 1024;
    l2_cache_bytes = 6 * 1024 * 1024;
    dram_bandwidth_gbs = 900.;
    fp32_tflops = 15.7;
    fp16_tflops = 31.4;
    library_tflops = 15.7;
    sm_clock_ghz = 1.53;
  }

let t4 =
  {
    name = "T4";
    num_sms = 40;
    warp_size = 32;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 16;
    max_warps_per_sm = 32;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    shared_mem_per_sm = 64 * 1024;
    shared_mem_per_block = 48 * 1024;
    l2_cache_bytes = 4 * 1024 * 1024;
    dram_bandwidth_gbs = 320.;
    fp32_tflops = 8.1;
    fp16_tflops = 16.2;
    library_tflops = 8.1;
    sm_clock_ghz = 1.59;
  }

let a100 =
  {
    name = "A100";
    num_sms = 108;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_warps_per_sm = 64;
    max_threads_per_block = 1024;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    shared_mem_per_sm = 164 * 1024;
    shared_mem_per_block = 48 * 1024;
    l2_cache_bytes = 40 * 1024 * 1024;
    dram_bandwidth_gbs = 1555.;
    fp32_tflops = 19.5;
    fp16_tflops = 78.;
    library_tflops = 156. (* TF32 tensor cores, the A100 default *);
    sm_clock_ghz = 1.41;
  }

let by_name = function
  | "v100" | "V100" -> Some v100
  | "t4" | "T4" -> Some t4
  | "a100" | "A100" -> Some a100
  | _ -> None

let pp fmt t =
  Format.fprintf fmt "%s (%d SMs, %.0f GB/s, %.1f TFLOPS fp32)" t.name
    t.num_sms t.dram_bandwidth_gbs t.fp32_tflops
