(* In-kernel global barriers (Xiao & Feng style, paper Sec 3.2.3).

   Legality: every block of the grid must be resident simultaneously
   (grid <= blocks per wave), otherwise active blocks spin forever waiting
   for blocks the scheduler has not launched - deadlock.

   Cost: calibrated against the paper's Table 6 (block size 1024 on V100):
   2.53 us at 20 blocks rising to 2.72 us at 160 blocks, i.e. a small
   fixed cost plus a weak linear term. *)

let base_cost_us = 2.51
let per_block_cost_us = 0.0013

let is_legal arch (l : Launch.t) = l.grid <= Occupancy.blocks_per_wave arch l

exception Deadlock of string

let check_legal arch l =
  if not (is_legal arch l) then
    raise
      (Deadlock
         (Printf.sprintf
            "global barrier with grid %d > %d resident blocks per wave"
            l.grid
            (Occupancy.blocks_per_wave arch l)))

let cost_us ~blocks = base_cost_us +. (per_block_cost_us *. float_of_int blocks)
