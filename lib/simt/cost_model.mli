(** Analytical kernel-time model (roofline + occupancy/wave derating +
    fixed overheads).  See DESIGN.md Sec 4 for the formula sketch. *)

type work = {
  dram_read_bytes : int;
  dram_write_bytes : int;
  fp32_insts : int;
  atomic_insts : int;
  num_barriers : int;
}

val no_work : work
val add_work : work -> work -> work

type config = {
  kernel_launch_overhead_us : float;
  kernel_fixed_us : float;
  framework_op_overhead_us : float;
  memcpy_overhead_us : float;
  occupancy_saturation : float;
  atomic_inst_equiv : int;
  compute_efficiency : float;
  library_compute_efficiency : float;
}

val default_config : config

type estimate = {
  time_us : float;
  exec_time_us : float;
  memory_time_us : float;
  compute_time_us : float;
  overhead_us : float;
  barrier_us : float;
  occupancy : float;
  sm_efficiency : float;
}

val transactions : int -> int
(** 32-byte DRAM sectors, matching nvprof's transaction counters. *)

val estimate : ?config:config -> Arch.t -> Launch.t -> work -> estimate
(** @raise Occupancy.Unlaunchable on illegal launches,
    @raise Barrier.Deadlock if barriers are used with an over-wide grid. *)

val memcpy_time_us : ?config:config -> Arch.t -> bytes:int -> float
