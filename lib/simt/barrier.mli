(** In-kernel global barriers (paper Sec 3.2.3, Table 6).

    Legal only when the whole grid is co-resident (grid <= blocks/wave);
    cost is a small constant plus a weak linear term in the block count. *)

exception Deadlock of string

val is_legal : Arch.t -> Launch.t -> bool
val check_legal : Arch.t -> Launch.t -> unit
val cost_us : blocks:int -> float
val base_cost_us : float
val per_block_cost_us : float
