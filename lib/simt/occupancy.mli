(** CUDA-occupancy-calculator style resource arithmetic.

    Reference point used by the paper: V100 with block size 1024 admits
    2 blocks/SM x 80 SMs = 160 resident blocks per wave. *)

exception Unlaunchable of string

val check_launchable : Arch.t -> Launch.t -> unit
(** @raise Unlaunchable if the launch violates a hard device limit. *)

val blocks_per_sm : Arch.t -> Launch.t -> int
(** Resident blocks per SM (min over thread/block/register/smem limits). *)

val blocks_per_wave : Arch.t -> Launch.t -> int

val theoretical_occupancy : Arch.t -> Launch.t -> float
(** Resident warps over peak warps per SM, from resources alone. *)

val waves : Arch.t -> Launch.t -> int
(** Number of waves needed to run the whole grid. *)

val wave_fullness : Arch.t -> Launch.t -> float
(** Average fraction of per-wave block slots actually used; < 1 for tail
    waves or grids smaller than one wave. *)

val achieved_occupancy : Arch.t -> Launch.t -> float
(** nvprof-style achieved occupancy: resident warps over peak warps on the
    SMs actually running blocks (idle SMs show up in SM efficiency). *)
