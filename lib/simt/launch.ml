(* A kernel launch configuration: grid/block geometry plus the per-thread
   register and per-block shared-memory footprints that bound occupancy. *)

type t = {
  grid : int;
  block : int;
  regs_per_thread : int;
  shared_mem_per_block : int; (* bytes *)
}

exception Invalid of string

let make ?(regs_per_thread = 32) ?(shared_mem_per_block = 0) ~grid ~block () =
  if grid < 1 then raise (Invalid (Printf.sprintf "grid %d < 1" grid));
  if block < 1 then raise (Invalid (Printf.sprintf "block %d < 1" block));
  if regs_per_thread < 1 then raise (Invalid "regs_per_thread < 1");
  if shared_mem_per_block < 0 then raise (Invalid "negative shared memory");
  { grid; block; regs_per_thread; shared_mem_per_block }

let threads t = t.grid * t.block

let pp fmt t =
  Format.fprintf fmt "<<<%d, %d>>> regs=%d smem=%dB" t.grid t.block
    t.regs_per_thread t.shared_mem_per_block
