(* CUDA-occupancy-calculator style resource arithmetic.

   Key reference point (used throughout the paper): on a V100 with block
   size 1024 a kernel can have at most 2 blocks per SM x 80 SMs = 160
   concurrently resident thread blocks per "wave". *)

exception Unlaunchable of string

let unlaunchable fmt = Format.kasprintf (fun s -> raise (Unlaunchable s)) fmt

let check_launchable (arch : Arch.t) (l : Launch.t) =
  if l.block > arch.max_threads_per_block then
    unlaunchable "block size %d exceeds device limit %d" l.block
      arch.max_threads_per_block;
  if l.regs_per_thread > arch.max_registers_per_thread then
    unlaunchable "%d registers per thread exceeds limit %d" l.regs_per_thread
      arch.max_registers_per_thread;
  if l.regs_per_thread * l.block > arch.registers_per_sm then
    unlaunchable "register footprint %d exceeds SM file %d"
      (l.regs_per_thread * l.block)
      arch.registers_per_sm;
  if l.shared_mem_per_block > arch.shared_mem_per_block then
    unlaunchable "shared memory %dB exceeds block limit %dB"
      l.shared_mem_per_block arch.shared_mem_per_block

(* Resident blocks per SM allowed by each resource. *)
let blocks_per_sm (arch : Arch.t) (l : Launch.t) =
  check_launchable arch l;
  let warps_per_block = (l.block + arch.warp_size - 1) / arch.warp_size in
  let by_blocks = arch.max_blocks_per_sm in
  let by_threads = arch.max_threads_per_sm / (warps_per_block * arch.warp_size) in
  let by_regs = arch.registers_per_sm / (l.regs_per_thread * l.block) in
  let by_smem =
    if l.shared_mem_per_block = 0 then max_int
    else arch.shared_mem_per_sm / l.shared_mem_per_block
  in
  Stdlib.max 0 (Stdlib.min (Stdlib.min by_blocks by_threads) (Stdlib.min by_regs by_smem))

let blocks_per_wave arch l = blocks_per_sm arch l * arch.num_sms

let theoretical_occupancy (arch : Arch.t) (l : Launch.t) =
  let warps_per_block = (l.block + arch.warp_size - 1) / arch.warp_size in
  float_of_int (blocks_per_sm arch l * warps_per_block)
  /. float_of_int arch.max_warps_per_sm

let waves arch (l : Launch.t) =
  let bpw = blocks_per_wave arch l in
  if bpw = 0 then unlaunchable "kernel fits zero blocks per SM";
  (l.grid + bpw - 1) / bpw

(* Average wave fullness: 1.0 when the grid tiles waves exactly, below 1
   when the tail wave (or a grid smaller than one wave) leaves SMs idle —
   the Figure 6(b) small-block-count pathology. *)
let wave_fullness arch (l : Launch.t) =
  let w = waves arch l in
  float_of_int l.grid /. float_of_int (w * blocks_per_wave arch l)

(* nvprof-style achieved occupancy: resident warps over peak warps on the
   SMs that actually run blocks.  A grid smaller than the machine leaves
   SMs idle - that shows up in SM efficiency, not here - but a grid that
   cannot fill even the active SMs' residency (e.g. 64 blocks of 1024 on
   a V100: one block per active SM where two fit) lowers it. *)
let achieved_occupancy (arch : Arch.t) (l : Launch.t) =
  let bpsm = blocks_per_sm arch l in
  if bpsm = 0 then unlaunchable "kernel fits zero blocks per SM";
  let warps_per_block = (l.block + arch.warp_size - 1) / arch.warp_size in
  let active_sms = Stdlib.min arch.num_sms l.grid in
  let resident_blocks_per_active_sm =
    Float.min (float_of_int bpsm)
      (float_of_int l.grid /. float_of_int active_sms)
  in
  resident_blocks_per_active_sm
  *. float_of_int warps_per_block
  /. float_of_int arch.max_warps_per_sm
