(** The TVM / Ansor baselines: fuse pattern (2) with redundant recompute
    (Fig 5), cut at reduces; Ansor additionally auto-schedules each
    kernel. *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config
val cut_edge : Fusion_common.cut_edge_fn
val compile : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val backend : Backend_intf.t
val compile_ansor : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val ansor : Backend_intf.t
