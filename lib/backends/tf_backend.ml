(* The TensorFlow baseline: no fusion at all.

   Every memory-intensive op runs as its own kernel dispatched by the
   framework executor, which also pays a per-op scheduling cost (the
   OVERHEAD component of Figure 13 that dominates TF runs). *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.framework_op_overhead_us = 10.0;
  }

let compile (arch : Arch.t) g =
  let live = Graph.live_ids g in
  let mem_kernels =
    Graph.memory_intensive_ids g
    |> List.filter (fun id -> live.(id) && not (Kernel_plan.is_leaf g id))
    |> List.map (fun id ->
           if Fusion_common.is_layout_only g id then
             Fusion_common.copy_kernel g id
           else begin
             let mapping = Fusion_common.naive_mapping arch g id in
             let launch =
               Launch.make ~regs_per_thread:24
                 ~grid:(Thread_mapping.grid mapping)
                 ~block:(Thread_mapping.block mapping)
                 ()
             in
             {
               Kernel_plan.name =
                 Printf.sprintf "%s_%d" (Op.mnemonic (Graph.op g id)) id;
               kind = Kernel_plan.Codegen;
               ops =
                 [
                   Lowering.compiled_op ~scheme:Scheme.Independent
                     ~placement:Kernel_plan.Device_mem ~mapping id;
                 ];
               launch;
               barriers = 0;
               scratch_bytes = 0;
             }
           end)
  in
  let kernels =
    Kernel_plan.toposort_kernels g
      (mem_kernels @ Lowering.library_kernels arch g)
  in
  let plan =
    {
      Kernel_plan.arch;
      graph = g;
      kernels;
      memcpys = Lowering.output_memcpys g;
      memsets = Lowering.atomic_memsets kernels;
      memcpy_bytes = Lowering.output_bytes g;
    batch = None;
    }
  in
  Kernel_plan.check plan;
  plan

let backend =
  { Backend_intf.name = "TensorFlow"; cost_config; compile }
