(** Shared machinery for the baseline fusion backends (XLA / TVM / TRT):
    legality-checked component formation, per-element inline recompute
    accounting, multi-output fusion roots and kernel construction. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

type cut_edge_fn =
  Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> bool

val naive_mapping : Arch.t -> Graph.t -> Op.node_id -> Thread_mapping.t
(** The XLA-style schedule of Fig 6: one block per reduction row, plain
    256-thread grids for element-wise roots; very long rows fall back to
    a two-stage atomic reduction. *)

val tuned_mapping : Arch.t -> Graph.t -> Op.node_id -> Thread_mapping.t
(** Ansor-style auto-scheduled mapping: packs small reduction rows but
    cannot change what is fused. *)

val components :
  Graph.t -> Clustering.cluster -> cut_edge:cut_edge_fn -> Op.node_id list list
(** Greedy fusion with the contraction-DAG legality check: the resulting
    kernel dependency graph is always schedulable. *)

val escapes : Graph.t -> (Op.node_id, unit) Hashtbl.t -> Op.node_id -> bool

val is_multi_output_root :
  Graph.t -> (Op.node_id, unit) Hashtbl.t -> cut_edge:cut_edge_fn ->
  Op.node_id -> bool

val recompute_cap : int

val recompute_factors :
  Graph.t ->
  (Op.node_id, unit) Hashtbl.t ->
  cut_edge:cut_edge_fn ->
  Op.node_id list ->
  Op.node_id ->
  int

val is_layout_only : Graph.t -> Op.node_id -> bool

val build_kernel :
  Arch.t ->
  Graph.t ->
  mapping_for_root:(Arch.t -> Graph.t -> Op.node_id -> Thread_mapping.t) ->
  cut_edge:cut_edge_fn ->
  name:string ->
  Op.node_id list ->
  Kernel_plan.kernel

val copy_kernel : Graph.t -> Op.node_id -> Kernel_plan.kernel

val compile :
  name:string ->
  cut_edge:cut_edge_fn ->
  mapping_for_root:(Arch.t -> Graph.t -> Op.node_id -> Thread_mapping.t) ->
  Arch.t ->
  Graph.t ->
  Kernel_plan.t
(** The full baseline pipeline: cluster, cut, fuse, lower, validate. *)
