(** The XLA baseline: per-element-inline fusion that skips the paper's
    pattern (1) (reduce -> consumer) and pattern (2) (heavy element-wise
    -> broadcast) boundaries. *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config
val cut_edge : Fusion_common.cut_edge_fn
val compile : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val backend : Backend_intf.t

module For_ablation : sig
  val cut_edge : Fusion_common.cut_edge_fn
end
