(** CUDA-Graph baseline: XLA's kernels bound into one graph launch -
    launch overhead gone, memory traffic untouched (paper Sec 7). *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config
val compile : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val backend : Backend_intf.t
