(* Shared machinery for the baseline fusion backends (XLA / TVM / TRT).

   All three follow the same recipe, differing only in which edges they
   refuse to fuse across:
   1. identify memory-intensive clusters;
   2. split each cluster into fusion kernels by cutting the edges the
      backend cannot generate code for;
   3. inside a kernel, inline every producer into its consumers through
      per-thread registers (the "per-element input inline" codegen of
      Sec 2.2) — which multiplies the producer's computation by its
      fan-out on one-to-many edges;
   4. the fusion root's naive thread mapping drives the whole kernel. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan

type cut_edge_fn =
  Graph.t -> producer:Op.node_id -> consumer:Op.node_id -> bool

(* --- Naive (non-adaptive) thread mappings ------------------------------- *)

(* The XLA-style schedule the paper criticizes in Fig 6: one block per
   reduction row (block size = row length rounded to a warp), a plain
   256-thread grid for element-wise roots. *)
let naive_mapping (arch : Arch.t) g id =
  match (Pattern.reduce_geometry_opt g id, Pattern.reduce_layout_opt g id) with
  | Some (rows, row_length), Some Pattern.Row_reduce ->
          (* one block per row; XLA only falls back to a two-stage
             (atomic) reduction for very long rows - the 30,000-element
             rows of Fig 6(b) still run as a single under-filled wave *)
          let split =
            if row_length > 65536 then Lowering.ceil_div row_length 65536
            else 1
          in
          Thread_mapping.Row_reduce
            {
              rows;
              row_length;
              threads_per_row =
                Lowering.threads_for_row ~warp_size:arch.warp_size
                  ~max_block:arch.max_threads_per_block row_length;
              rows_per_block = 1;
              row_groups_per_block = 1;
              split;
            }
  | Some (rows, row_length), Some Pattern.Column_reduce ->
      let total = rows * row_length in
      Thread_mapping.Column_reduce
        {
          rows;
          row_length;
          block = 256;
          grid = Stdlib.max 1 (Lowering.ceil_div total 256);
        }
  | _ ->
      let elements = Graph.num_elements g id in
      Thread_mapping.Elementwise
        {
          elements;
          block = 256;
          grid = Stdlib.max 1 (Lowering.ceil_div elements 256);
          rows = None;
        }

(* Ansor-style tuned mapping: auto-scheduling finds good block shapes for
   each standalone kernel (it packs small reduction rows into full
   blocks), but cannot change what is fused. *)
let tuned_mapping (arch : Arch.t) g id =
  match (Pattern.reduce_geometry_opt g id, Pattern.reduce_layout_opt g id) with
  | Some (rows, row_length), Some Pattern.Row_reduce ->
      let threads_per_row =
        Lowering.threads_for_row ~warp_size:arch.warp_size
          ~max_block:arch.max_threads_per_block row_length
      in
      let rows_per_block =
        Stdlib.max 1
          (Stdlib.min rows (arch.max_threads_per_block / threads_per_row))
      in
      Thread_mapping.Row_reduce
        {
          rows;
          row_length;
          threads_per_row;
          rows_per_block;
          row_groups_per_block = 1;
          split = 1;
        }
  | _ -> naive_mapping arch g id

(* --- Fusion-kernel construction ----------------------------------------- *)

(* Split a cluster into fusion components by greedily merging across the
   edges the backend can fuse, with the classic legality check: merging
   the components of a producer-consumer pair is illegal if one already
   reaches the other through *other components* in the contracted
   (component-level) graph.  Kernels execute atomically, so the check must
   run on the contraction, not on node-level paths: a kernel-dependency
   cycle A -> C -> B with a fused A+B needs no directed node path through
   C's members.  The invariant maintained is that the contraction stays a
   DAG, which makes the final kernel list schedulable.

   Paths between cluster nodes never leave the cluster: leaving means
   passing a compute-intensive op, which strictly increases the compute
   depth, and clusters are single-depth. *)
let components g (cluster : Clustering.cluster) ~cut_edge =
  let nodes = cluster.Clustering.nodes in
  let in_cluster = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_cluster id ()) nodes;
  let parent = Hashtbl.create 16 in
  let members_of = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace parent id id;
      Hashtbl.replace members_of id [ id ])
    nodes;
  let rec find id =
    let p = Hashtbl.find parent id in
    if p = id then id
    else begin
      let r = find p in
      Hashtbl.replace parent id r;
      r
    end
  in
  (* successor components of [root] in the current contraction *)
  let comp_succ root =
    let s = Hashtbl.create 8 in
    List.iter
      (fun id ->
        List.iter
          (fun consumer ->
            if Hashtbl.mem in_cluster consumer then begin
              let cc = find consumer in
              if cc <> root then Hashtbl.replace s cc ()
            end)
          (Graph.consumers g id))
      (Hashtbl.find members_of root);
    s
  in
  (* Can [src] reach [dst] through at least one intermediate component? *)
  let reaches_via_others src dst =
    let visited = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.iter
      (fun c () -> if c <> dst && c <> src then Queue.add c queue)
      (comp_succ src);
    let found = ref false in
    while (not (Queue.is_empty queue)) && not !found do
      let c = Queue.pop queue in
      if not (Hashtbl.mem visited c) then begin
        Hashtbl.replace visited c ();
        Hashtbl.iter
          (fun n () ->
            if n = dst then found := true
            else if n <> src && not (Hashtbl.mem visited n) then
              Queue.add n queue)
          (comp_succ c)
      end
    done;
    !found
  in
  let illegal_merge ca cb =
    reaches_via_others ca cb || reaches_via_others cb ca
  in
  List.iter
    (fun id ->
      List.iter
        (fun operand ->
          if
            Hashtbl.mem in_cluster operand
            && not (cut_edge g ~producer:operand ~consumer:id)
          then begin
            let ca = find operand and cb = find id in
            if ca <> cb && not (illegal_merge ca cb) then begin
              let keep = Stdlib.min ca cb and gone = Stdlib.max ca cb in
              Hashtbl.replace parent gone keep;
              Hashtbl.replace members_of keep
                (Hashtbl.find members_of keep @ Hashtbl.find members_of gone);
              Hashtbl.remove members_of gone
            end
          end)
        (Graph.operands g id))
    nodes;
  Hashtbl.fold
    (fun _ ids acc -> List.sort compare ids :: acc)
    members_of []
  |> List.sort compare

(* A node escapes its kernel when some consumer lives outside it or it is
   a graph output. *)
let escapes g kernel_set id =
  Graph.is_output g id
  || List.exists (fun c -> not (Hashtbl.mem kernel_set c)) (Graph.consumers g id)

(* A component may contain a cut edge internally (producer and consumer
   joined through other fusable paths).  The producer then becomes a
   multi-output fusion root, exactly as in XLA: it is materialized and the
   in-kernel consumer reads the materialized value instead of inlining
   (inlining across a cut edge is what the backend refused to generate
   code for in the first place - e.g. re-running a whole reduction per
   consumer element). *)
let is_multi_output_root g kernel_set ~cut_edge id =
  List.exists
    (fun consumer ->
      Hashtbl.mem kernel_set consumer
      && cut_edge g ~producer:id ~consumer)
    (Graph.consumers g id)

(* Per-element inline recompute factors: the root is computed once; a
   producer is re-evaluated once per broadcast replica when inlined under
   a one-to-many edge (the Figure 5 pathology).  Within one thread, the
   emitter caches per-element values, so several same-index consumers
   share one evaluation: demand combines with [max], not [+].  Demand
   never crosses cut edges: those consumers read a materialized value. *)
let recompute_cap = 1_000_000

let recompute_factors g kernel_set ~cut_edge (ids : Op.node_id list) =
  let factor = Hashtbl.create 16 in
  let get id = Option.value ~default:0 (Hashtbl.find_opt factor id) in
  List.iter
    (fun id ->
      let demand =
        List.fold_left
          (fun acc consumer ->
            if
              Hashtbl.mem kernel_set consumer
              && not (cut_edge g ~producer:id ~consumer)
            then
              Stdlib.max acc
                (Stdlib.max 1 (get consumer)
                * Pattern.fanout g ~producer:id ~consumer)
            else acc)
          0 (Graph.consumers g id)
      in
      Hashtbl.replace factor id (Stdlib.min recompute_cap (Stdlib.max 1 demand)))
    (List.rev ids);
  fun id -> Stdlib.max 1 (get id)

let is_layout_only g id =
  match Graph.op g id with
  | Op.Reshape _ | Op.Transpose _ -> true
  | _ -> false

(* Build one fusion kernel from a component. *)
let build_kernel arch g ~mapping_for_root ~cut_edge ~name (ids : Op.node_id list) =
  let kernel_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace kernel_set id ()) ids;
  let recompute = recompute_factors g kernel_set ~cut_edge ids in
  let materialized id =
    escapes g kernel_set id || is_multi_output_root g kernel_set ~cut_edge id
  in
  (* roots: escaping nodes plus multi-output roots.  The kernel schedule
     follows the root with the largest workload (a reduce counts its
     input); ties prefer the reduce. *)
  let roots = List.filter materialized ids in
  let root_weight id =
    match Graph.op g id with
    | Op.Reduce { input; _ } -> (Graph.num_elements g input, 1)
    | _ -> (Graph.num_elements g id, 0)
  in
  let primary =
    match
      List.sort (fun a b -> compare (root_weight b) (root_weight a)) roots
    with
    | r :: _ -> r
    | [] -> List.nth ids (List.length ids - 1)
  in
  let primary_mapping = mapping_for_root arch g primary in
  let op_mapping id =
    if Op.is_reduce (Graph.op g id) then mapping_for_root arch g id
    else primary_mapping
  in
  let ops =
    List.map
      (fun id ->
        let placement =
          if materialized id then Kernel_plan.Device_mem
          else Kernel_plan.Register
        in
        {
          Kernel_plan.id;
          scheme =
            (if placement = Kernel_plan.Device_mem then Scheme.Independent
             else Scheme.Local);
          placement;
          mapping = op_mapping id;
          recompute = recompute id;
          group = 0;
        })
      ids
  in
  let regs =
    Stdlib.min
      (Stdlib.min arch.Arch.max_registers_per_thread
         (arch.Arch.registers_per_sm / Thread_mapping.block primary_mapping))
      (20 + (3 * List.length ids))
    |> Stdlib.max 16
  in
  let launch =
    Launch.make ~regs_per_thread:regs
      ~grid:(Thread_mapping.grid primary_mapping)
      ~block:(Thread_mapping.block primary_mapping)
      ()
  in
  {
    Kernel_plan.name;
    kind = Kernel_plan.Codegen;
    ops;
    launch;
    barriers = 0;
    scratch_bytes = 0;
  }

(* Standalone layout ops lower to cudaMemcpy DtoD. *)
let copy_kernel g id =
  let mapping =
    Thread_mapping.Elementwise
      {
        elements = Graph.num_elements g id;
        block = 256;
        grid = Stdlib.max 1 (Lowering.ceil_div (Graph.num_elements g id) 256);
        rows = None;
      }
  in
  {
    Kernel_plan.name = Printf.sprintf "copy_%d" id;
    kind = Kernel_plan.Copy;
    ops =
      [
        {
          Kernel_plan.id;
          scheme = Scheme.Independent;
          placement = Kernel_plan.Device_mem;
          mapping;
          recompute = 1;
          group = 0;
        };
      ];
    launch = Launch.make ~grid:(Thread_mapping.grid mapping) ~block:256 ();
    barriers = 0;
    scratch_bytes = 0;
  }

(* The full baseline pipeline. *)
let compile ~name ~cut_edge ~mapping_for_root (arch : Arch.t) g =
  let clusters = Clustering.clusters g in
  let fusion_kernels =
    List.concat_map
      (fun cluster ->
        components g cluster ~cut_edge
        |> List.mapi (fun i ids ->
               match ids with
               | [ single ] when is_layout_only g single ->
                   copy_kernel g single
               | _ ->
                   build_kernel arch g ~mapping_for_root ~cut_edge
                     ~name:
                       (Printf.sprintf "%s_fusion_c%d_%d" name
                          cluster.Clustering.id i)
                     ids))
      clusters
  in
  let kernels =
    Kernel_plan.toposort_kernels g
      (fusion_kernels @ Lowering.library_kernels arch g)
  in
  let plan =
    {
      Kernel_plan.arch;
      graph = g;
      kernels;
      memcpys = Lowering.output_memcpys g;
      memsets = Lowering.atomic_memsets kernels;
      memcpy_bytes = Lowering.output_bytes g;
    batch = None;
    }
  in
  Kernel_plan.check plan;
  plan
