(* A TensorRT-like baseline.

   TensorRT ships a library of hand-tuned fused implementations aimed at
   CNN/fixed-shape inference.  On the paper's memory-intensive NLP /
   recommendation workloads its coverage is narrow: it fuses element-wise
   chains well but breaks at reduces (pattern 1), at heavy-op->broadcast
   boundaries (pattern 2), *and* at data-rearranging broadcasts outside
   its pattern library, so it ends up with even more kernels than XLA on
   these graphs — which is why the paper measures AStitch 2.47x over TRT
   vs 1.84x over XLA.  Its enqueue path is leaner than TF's. *)

open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.framework_op_overhead_us = 1.0;
  }

let cut_edge g ~producer ~consumer =
  Astitch_ir.Pattern.is_pattern1_edge g ~producer ~consumer
  || Astitch_ir.Pattern.is_pattern2_edge g ~producer ~consumer
  || Astitch_ir.Op.is_broadcast (Astitch_ir.Graph.op g producer)

let compile arch g =
  Fusion_common.compile ~name:"trt" ~cut_edge
    ~mapping_for_root:Fusion_common.naive_mapping arch g

let backend = { Backend_intf.name = "TensorRT"; cost_config; compile }
