(* The XLA baseline (paper Sec 2.3.1).

   XLA fuses memory-intensive ops with per-element input inlining, but
   *skips* fusion across the two one-to-many patterns it cannot generate
   efficient code for:
     (1) a reduce feeding any consumer, and
     (2) a heavy element-wise op feeding a broadcast,
   producing many small kernels (Table 3) with the naive thread mappings
   of Figure 6. *)

open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.framework_op_overhead_us = 1.5;
  }

let cut_edge g ~producer ~consumer =
  Astitch_ir.Pattern.is_pattern1_edge g ~producer ~consumer
  || Astitch_ir.Pattern.is_pattern2_edge g ~producer ~consumer

let compile arch g =
  Fusion_common.compile ~name:"xla" ~cut_edge
    ~mapping_for_root:Fusion_common.naive_mapping arch g

let backend = { Backend_intf.name = "XLA"; cost_config; compile }

(* XLA + AStitch's adaptive thread mapping only (the "ATM" row of the
   Table 4 ablation) is exported by the astitch library, which owns the
   adaptive mapping logic. *)
module For_ablation = struct
  let cut_edge = cut_edge
end
