(* A CUDA-Graph baseline (paper Sec 7 related work).

   CUDA Graphs *bind* the kernels of an iteration into one graph launch:
   the per-kernel driver overhead collapses to a small replay cost, but -
   unlike fusion or stitching - every kernel still runs as before, so
   off-chip traffic and intra-kernel inefficiency are untouched, and the
   captured graph's metadata occupies extra device memory.

   Modelled as the XLA plan executed with a near-zero launch cost.  The
   comparison against AStitch isolates how much of the win is pure
   launch-overhead removal (CUDA Graph gets that too) versus memory
   hierarchy and parallelism (it does not). *)

open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.kernel_launch_overhead_us = 3.0 (* per-node replay cost *);
    framework_op_overhead_us = 0.1;
  }

let compile arch g = Xla_backend.compile arch g

let backend = { Backend_intf.name = "CUDA-Graph"; cost_config; compile }
