(** The TensorFlow baseline: no fusion, one kernel per memory-intensive op,
    per-op framework scheduling overhead. *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config
val compile : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val backend : Backend_intf.t
