(* The TVM / Ansor baselines (paper Sec 2.3.1 and Sec 6.2).

   TVM skips fusion across reduce->consumer edges (pattern 1) like XLA,
   but *does* fuse heavy element-wise ops into their broadcast consumers
   (pattern 2), paying the redundant-recompute cost of Figure 5: the
   producer is re-evaluated once per broadcast replica in every consumer
   thread.

   The Ansor variant keeps TVM's fusion decisions but auto-schedules each
   kernel, finding better block shapes (horizontal packing of small
   reduction rows) at the cost of a long tuning run. *)

open Astitch_simt
open Astitch_plan

let cost_config =
  {
    Cost_model.default_config with
    Cost_model.framework_op_overhead_us = 1.5;
  }

let cut_edge g ~producer ~consumer =
  Astitch_ir.Pattern.is_pattern1_edge g ~producer ~consumer

let compile arch g =
  Fusion_common.compile ~name:"tvm" ~cut_edge
    ~mapping_for_root:Fusion_common.naive_mapping arch g

let backend = { Backend_intf.name = "TVM"; cost_config; compile }

let compile_ansor arch g =
  Fusion_common.compile ~name:"ansor" ~cut_edge
    ~mapping_for_root:Fusion_common.tuned_mapping arch g

let ansor =
  { Backend_intf.name = "Ansor"; cost_config; compile = compile_ansor }
