(** A TensorRT-like baseline: narrow pattern-library coverage on the
    paper's memory-intensive workloads (also cuts at data-rearranging
    broadcasts), lean enqueue path. *)

open Astitch_simt
open Astitch_plan

val cost_config : Cost_model.config
val cut_edge : Fusion_common.cut_edge_fn
val compile : Arch.t -> Astitch_ir.Graph.t -> Kernel_plan.t
val backend : Backend_intf.t
