(* Compiled execution plans.

   A plan is an ordered list of kernels over the nodes of a computation
   graph.  Each kernel lists its ops (in execution order) with the
   stitching scheme, buffer placement, thread mapping and recompute factor
   the backend chose.  From that single representation we derive:
   - the simulated execution cost (through [kernel_work] + the SIMT model),
   - the nvprof-style counters,
   - the numerical execution (the runtime executor interprets plans), and
   - the structural invariants each backend must respect ([check]). *)

open Astitch_ir
open Astitch_simt

type placement =
  | Register (* per-thread; value lives only inside consuming threads *)
  | Shared_mem (* per-block scratch; regional stitching *)
  | Global_scratch (* device scratch consumed inside the same kernel *)
  | Device_mem (* materialized tensor visible to later kernels *)

let placement_to_string = function
  | Register -> "reg"
  | Shared_mem -> "smem"
  | Global_scratch -> "gmem-scratch"
  | Device_mem -> "device"

type compiled_op = {
  id : Op.node_id;
  scheme : Scheme.t;
  placement : placement;
  mapping : Thread_mapping.t;
  recompute : int; (* avg times each output element is computed; >= 1 *)
  group : int;
      (* op group (schedule) this op belongs to inside its kernel; ops in
         different groups cannot share per-thread register caches, so an
         operand read by two groups is loaded twice (the operator-level
         reuse dominant merging buys back) *)
}

type kernel_kind =
  | Codegen (* generated fusion/stitch kernel *)
  | Library (* cuBLAS / cuDNN call for a compute-intensive op *)
  | Copy (* standalone layout op implemented as cudaMemcpy DtoD *)

type kernel = {
  name : string;
  kind : kernel_kind;
  ops : compiled_op list; (* execution order *)
  launch : Launch.t;
  barriers : int; (* in-kernel global barriers *)
  scratch_bytes : int; (* global-scratch arena after liveness reuse *)
}

type t = {
  arch : Arch.t;
  graph : Graph.t;
  kernels : kernel list; (* execution order *)
  memcpys : int; (* CUDA memcpy calls (Table 3 "CPY" includes memsets) *)
  memsets : int;
  memcpy_bytes : int;
  batch : Batch_axis.plan option;
      (* when the graph is the max-batch member of a shape-polymorphic
         family, the symbolic batch extent and per-node classification
         that license executing any smaller batch over this plan's
         buffers without recompiling; None for fixed-shape plans *)
}

(* Structural problems are reported as Compile_error violations; [check]
   raises [Compile_error.Error] on the first, [check_all] collects all. *)

(* --- Simple accessors -------------------------------------------------- *)

let kernel_node_ids k = List.map (fun (o : compiled_op) -> o.id) k.ops

let is_memory_intensive_kernel k = k.kind = Codegen

let memory_intensive_kernels t =
  List.filter is_memory_intensive_kernel t.kernels

let compute_intensive_kernels t =
  List.filter (fun k -> k.kind = Library) t.kernels

let copy_kernels t = List.filter (fun k -> k.kind = Copy) t.kernels

(* Table 3's "CPY": CUDA memcpy/memset activities. *)
let cpy_count t = t.memcpys + t.memsets + List.length (copy_kernels t)

(* Per-kernel op lookup.  Hot paths (invariant checking, the runtime
   executor) query ops by node id many times per kernel; an index table
   built in one pass replaces the per-query list scan.  Insertion keeps
   the first op with a given id, matching what [List.find_opt] returned
   on (ill-formed) kernels with duplicates. *)
type op_index = (Op.node_id, compiled_op) Hashtbl.t

let index_ops k : op_index =
  let idx = Hashtbl.create (max 16 (2 * List.length k.ops)) in
  List.iter
    (fun (o : compiled_op) ->
      if not (Hashtbl.mem idx o.id) then Hashtbl.add idx o.id o)
    k.ops;
  idx

let find_op_in (idx : op_index) id = Hashtbl.find_opt idx id
let find_op k id = find_op_in (index_ops k) id

(* Node id -> kernel that materializes it to device memory (first in
   execution order, as with the per-kernel index). *)
let materializer_index t : (Op.node_id, kernel) Hashtbl.t =
  let idx = Hashtbl.create 64 in
  List.iter
    (fun k ->
      List.iter
        (fun (o : compiled_op) ->
          if o.placement = Device_mem && not (Hashtbl.mem idx o.id) then
            Hashtbl.add idx o.id k)
        k.ops)
    t.kernels;
  idx

(* The kernel that materializes a node to device memory, if any. *)
let producer_kernel t id = Hashtbl.find_opt (materializer_index t) id

(* --- Per-op instruction counting --------------------------------------- *)

(* FP32 instructions executed for one full evaluation of the op. *)
let op_insts g id =
  let op = Graph.op g id in
  let out_elems = Graph.num_elements g id in
  match op with
  | Op.Reduce { input; _ } -> Graph.num_elements g input
  | Op.Max_pool { window; _ } -> out_elems * window * window
  | Op.Dot { lhs; _ } ->
      let ls = Graph.shape g lhs in
      let k = ls.(Shape.rank ls - 1) in
      2 * out_elems * k
  | Op.Conv2d { filter; _ } ->
      let fs = Graph.shape g filter in
      2 * out_elems * fs.(0) * fs.(1) * fs.(2)
  | _ -> out_elems * Op.fp32_insts_per_element op

(* --- Memory-traffic analysis ------------------------------------------ *)

(* Whether a cross-kernel read of [id] hits L2 (it was produced recently by
   a preceding kernel and is small enough to still be resident) or goes to
   DRAM (parameters/constants are cold; big tensors are evicted). *)
let intermediate_stays_in_l2 t id =
  Graph.bytes t.graph id * 2 <= t.arch.Arch.l2_cache_bytes

let is_leaf g id =
  match Graph.op g id with
  | Op.Parameter _ | Op.Constant _ | Op.Iota _ -> true
  | _ -> false

(* DRAM + instruction work of one kernel.

   Reads: distinct operands read from outside the kernel's on-chip values.
   Cold data (parameters, constants) always comes from DRAM; intermediates
   materialized by earlier kernels are L2 hits when small (this is why XLA
   and AStitch show nearly identical dram_read counters in Table 5 while
   the write counters differ by 4x: every XLA kernel boundary *writes* its
   intermediate, but the following read usually hits L2).

   Redundant recomputation multiplies instructions, not DRAM traffic (the
   replicated loads hit cache).  That reproduces Table 5's structure:
   inst_fp_32 inflation without read inflation. *)
let kernel_work t (k : kernel) : Cost_model.work =
  let g = t.graph in
  let in_kernel = Hashtbl.create 16 in
  List.iter (fun (o : compiled_op) -> Hashtbl.replace in_kernel o.id o) k.ops;
  (* Reads are deduplicated per (operand, op group): within one schedule
     the loaded value sits in registers, across groups it is re-loaded
     (the operator-level reuse dominant merging buys back).  A consumer
     that is recomputed also re-loads its operands; the cache bounds the
     amplification, so it is capped. *)
  let reload_cap = 4 in
  let seen_reads : (Op.node_id * int, int) Hashtbl.t = Hashtbl.create 16 in
  let note_external_read ~group ~times id =
    let times = Stdlib.min reload_cap times in
    let prev = Option.value ~default:0 (Hashtbl.find_opt seen_reads (id, group)) in
    if times > prev then Hashtbl.replace seen_reads (id, group) times
  in
  let total_read_bytes () =
    Hashtbl.fold
      (fun (id, _group) times acc ->
        let bytes = Graph.bytes g id in
        if is_leaf g id then acc + (bytes * times)
        else if not (intermediate_stays_in_l2 t id) then acc + (bytes * times)
        else acc)
      seen_reads 0
  in
  let write_bytes = ref 0 in
  let insts = ref 0 in
  let atomics = ref 0 in
  List.iter
    (fun (o : compiled_op) ->
      List.iter
        (fun operand ->
          match Hashtbl.find_opt in_kernel operand with
          | Some producer -> (
              match producer.placement with
              | Register | Shared_mem -> ()
              | Global_scratch ->
                  (* scratch reads go through L2 when small *)
                  if not (intermediate_stays_in_l2 t operand) then
                    note_external_read ~group:o.group ~times:1 operand
              | Device_mem -> ())
          | None -> note_external_read ~group:o.group ~times:o.recompute operand)
        (Graph.operands g o.id);
      (match o.placement with
      | Device_mem | Global_scratch ->
          write_bytes := !write_bytes + Graph.bytes g o.id
      | Register | Shared_mem -> ());
      insts := !insts + (op_insts g o.id * o.recompute);
      (match Graph.op g o.id with
      | Op.Scatter_add _ ->
          (* one atomic add per update element *)
          atomics := !atomics + Graph.num_elements g o.id
      | _ -> ());
      if Thread_mapping.uses_atomics o.mapping then begin
        let extra =
          match o.mapping with
          | Thread_mapping.Row_reduce { rows; split; _ } -> rows * split
          | Thread_mapping.Column_reduce { rows = _; row_length = _; grid; _ }
            ->
              Graph.num_elements g o.id * Stdlib.min 8 grid
          | Thread_mapping.Elementwise _ -> 0
        in
        atomics := !atomics + extra
      end)
    k.ops;
  {
    Cost_model.dram_read_bytes = total_read_bytes ();
    dram_write_bytes = !write_bytes;
    fp32_insts = !insts;
    atomic_insts = !atomics;
    num_barriers = k.barriers;
  }

(* --- Structural invariants --------------------------------------------- *)

(* Violations of one kernel, independent of the rest of the plan:
   intra-kernel topological order (1), register co-location (5),
   shared-memory legality and footprint (6), barrier and launch
   legality (7).  Cross-kernel invariants live in [plan_violations]. *)
let kernel_violations ~emit arch g (k : kernel) =
  let structure = Compile_error.Invalid_structure in
  let idx = index_ops k in
  let live = Graph.live_ids g in
  let live_consumers id =
    List.filter (fun c -> live.(c)) (Graph.consumers g id)
  in
  (* 1. intra-kernel topological order and non-emptiness *)
  if k.ops = [] then
    emit
      (Compile_error.violation ~where:k.name Compile_error.Empty_cluster
         "kernel %s has no ops" k.name);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (o : compiled_op) ->
      List.iter
        (fun operand ->
          if Hashtbl.mem idx operand && not (Hashtbl.mem seen operand) then
            emit
              (Compile_error.violation ~where:k.name ~ops:[ o.id; operand ]
                 structure
                 "kernel %s: op %%%d uses in-kernel operand %%%d before it \
                  is computed" k.name o.id operand))
        (Graph.operands g o.id);
      Hashtbl.replace seen o.id ())
    k.ops;
  (* 5. register placement: consumers must be co-located, and one-to-many
        consumers must pay their recompute *)
  List.iter
    (fun (o : compiled_op) ->
      if o.placement = Register then
        List.iter
          (fun consumer ->
            match find_op_in idx consumer with
            | None ->
                emit
                  (Compile_error.violation ~where:k.name
                     ~ops:[ o.id; consumer ] structure
                     "node %%%d in register but consumer %%%d is outside \
                      kernel %s" o.id consumer k.name)
            | Some c ->
                if
                  Pattern.edge_dep g ~producer:o.id ~consumer = One_to_many
                  && o.recompute = 1 && c.recompute = 1
                  && not (Thread_mapping.block_aligned o.mapping c.mapping)
                then
                  emit
                    (Compile_error.violation ~where:k.name
                       ~ops:[ o.id; consumer ] structure
                       "node %%%d: register value fans out to %%%d without \
                        recompute or alignment" o.id consumer))
          (live_consumers o.id))
    k.ops;
  (* 6. shared-memory placement: consumers in-kernel, block-aligned, and
        total smem within the declared launch footprint *)
  let smem_bytes = ref 0 in
  List.iter
    (fun (o : compiled_op) ->
      if o.placement = Shared_mem then begin
        (match Thread_mapping.contiguous_outputs_per_block o.mapping with
        | None ->
            emit
              (Compile_error.violation ~where:k.name ~ops:[ o.id ] structure
                 "node %%%d: shared-memory placement with non-contiguous \
                  mapping" o.id)
        | Some per_block ->
            smem_bytes :=
              !smem_bytes + (per_block * Dtype.size_bytes (Graph.dtype g o.id)));
        List.iter
          (fun consumer ->
            if find_op_in idx consumer = None then
              emit
                (Compile_error.violation ~where:k.name ~ops:[ o.id; consumer ]
                   structure
                   "node %%%d in shared memory but consumer %%%d escapes \
                    kernel %s" o.id consumer k.name))
          (live_consumers o.id)
      end)
    k.ops;
  if !smem_bytes > k.launch.Launch.shared_mem_per_block then
    emit
      (Compile_error.violation ~where:k.name Compile_error.Shared_mem_overflow
         "kernel %s: shared buffers need %dB > declared %dB" k.name
         !smem_bytes k.launch.Launch.shared_mem_per_block);
  (* 7. global-scratch consumed in-kernel requires a global barrier, which
        must be legal for the launch *)
  let needs_barrier =
    List.exists
      (fun (o : compiled_op) ->
        o.placement = Global_scratch
        && List.exists (fun c -> Hashtbl.mem idx c) (live_consumers o.id))
      k.ops
  in
  if needs_barrier && k.barriers = 0 then
    emit
      (Compile_error.violation ~where:k.name Compile_error.Barrier_deadlock
         "kernel %s: global-scratch reuse without a global barrier" k.name);
  (if k.barriers > 0 then
     try Barrier.check_legal arch k.launch
     with Barrier.Deadlock m ->
       emit
         (Compile_error.violation ~where:k.name Compile_error.Barrier_deadlock
            "kernel %s: %s" k.name m));
  try Occupancy.check_launchable arch k.launch
  with Occupancy.Unlaunchable m ->
    emit
      (Compile_error.violation ~where:k.name Compile_error.Unlaunchable
         "kernel %s: %s" k.name m)

(* Cross-kernel invariants: unique materialization (2), availability in
   execution order (3), outputs materialized (4). *)
let plan_violations ~emit t =
  let g = t.graph in
  let structure = Compile_error.Invalid_structure in
  (* 2. each node materialized to device at most once *)
  let materialized = Hashtbl.create 64 in
  List.iter
    (fun k ->
      List.iter
        (fun (o : compiled_op) ->
          if o.placement = Device_mem then begin
            if Hashtbl.mem materialized o.id then
              emit
                (Compile_error.violation ~where:k.name ~ops:[ o.id ] structure
                   "node %%%d materialized by two kernels" o.id);
            Hashtbl.replace materialized o.id k.name
          end)
        k.ops)
    t.kernels;
  (* 3. cross-kernel availability in execution order *)
  let available = Hashtbl.create 64 in
  List.iter
    (fun k ->
      let local = Hashtbl.create 16 in
      List.iter
        (fun (o : compiled_op) ->
          List.iter
            (fun operand ->
              let ok =
                Hashtbl.mem local operand
                || Hashtbl.mem available operand
                || is_leaf g operand
              in
              if not ok then
                emit
                  (Compile_error.violation ~where:k.name ~ops:[ operand ]
                     structure
                     "kernel %s: op %%%d reads %%%d which is not available"
                     k.name o.id operand))
            (Graph.operands g o.id);
          Hashtbl.replace local o.id ())
        k.ops;
      (* executor semantics: on-chip and scratch values die with their
         kernel, and a kernel recomputing a node on-chip purges any copy
         an earlier kernel materialized (single value slot per node) *)
      List.iter
        (fun (o : compiled_op) ->
          if o.placement = Device_mem then Hashtbl.replace available o.id ()
          else Hashtbl.remove available o.id)
        k.ops)
    t.kernels;
  (* 4. graph outputs are materialized *)
  List.iter
    (fun out ->
      if not (Hashtbl.mem available out || is_leaf g out) then
        emit
          (Compile_error.violation ~ops:[ out ] structure
             "graph output %%%d never materialized to device memory" out))
    (Graph.outputs g)

let check_kernel arch g k =
  let acc = ref [] in
  kernel_violations ~emit:(fun v -> acc := v :: !acc) arch g k;
  List.rev !acc

let check_all t =
  let acc = ref [] in
  let emit v = acc := v :: !acc in
  List.iter (kernel_violations ~emit t.arch t.graph) t.kernels;
  plan_violations ~emit t;
  List.rev !acc

let check t =
  match check_all t with
  | [] -> ()
  | violations -> raise (Compile_error.error ~pass:"plan-check" violations)

(* --- Kernel scheduling -------------------------------------------------- *)

(* Topologically order kernels by their data dependencies (kernel A -> B
   when B reads a node A materializes).  Needed because remote stitching
   produces kernels whose op ids interleave; node-id order is no longer a
   valid schedule.  Ties break on the smallest node id for determinism. *)
let toposort_kernels g kernels =
  let arr = Array.of_list kernels in
  let n = Array.length arr in
  let producer = Hashtbl.create 64 in
  Array.iteri
    (fun ki k ->
      List.iter
        (fun (o : compiled_op) ->
          if o.placement = Device_mem then Hashtbl.replace producer o.id ki)
        k.ops)
    arr;
  let deps = Array.make n [] in
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iteri
    (fun ki k ->
      let local = Hashtbl.create 16 in
      List.iter (fun (o : compiled_op) -> Hashtbl.replace local o.id ()) k.ops;
      let dep_set = Hashtbl.create 8 in
      List.iter
        (fun (o : compiled_op) ->
          List.iter
            (fun operand ->
              if not (Hashtbl.mem local operand) then
                match Hashtbl.find_opt producer operand with
                | Some kj when kj <> ki -> Hashtbl.replace dep_set kj ()
                | _ -> ())
            (Graph.operands g o.id))
        k.ops;
      deps.(ki) <- Hashtbl.fold (fun kj () acc -> kj :: acc) dep_set [])
    arr;
  Array.iteri
    (fun ki ds ->
      List.iter
        (fun kj ->
          succs.(kj) <- ki :: succs.(kj);
          indegree.(ki) <- indegree.(ki) + 1)
        ds)
    deps;
  let key ki =
    match arr.(ki).ops with [] -> max_int | o :: _ -> o.id
  in
  let module Ready = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  Array.iteri
    (fun ki d -> if d = 0 then ready := Ready.add (key ki, ki) !ready)
    indegree;
  let out = ref [] in
  let emitted = ref 0 in
  while not (Ready.is_empty !ready) do
    let ((_, ki) as elt) = Ready.min_elt !ready in
    ready := Ready.remove elt !ready;
    out := arr.(ki) :: !out;
    incr emitted;
    List.iter
      (fun kj ->
        indegree.(kj) <- indegree.(kj) - 1;
        if indegree.(kj) = 0 then ready := Ready.add (key kj, kj) !ready)
      succs.(ki)
  done;
  if !emitted <> n then
    Compile_error.fail ~pass:"kernel-schedule" Compile_error.Invalid_structure
      "cyclic kernel dependencies";
  List.rev !out

(* --- Pretty printing ---------------------------------------------------- *)

let pp_kernel g fmt (k : kernel) =
  Format.fprintf fmt "%s %s [%a]%s@." k.name
    (match k.kind with
    | Codegen -> "(codegen)"
    | Library -> "(library)"
    | Copy -> "(memcpy)")
    Launch.pp k.launch
    (if k.barriers > 0 then Printf.sprintf " barriers=%d" k.barriers else "");
  List.iter
    (fun (o : compiled_op) ->
      Format.fprintf fmt "    %a  :: %s/%s recompute=%d  %s@." (Graph.pp_node g)
        o.id
        (Scheme.to_string o.scheme)
        (placement_to_string o.placement)
        o.recompute
        (Thread_mapping.to_string o.mapping))
    k.ops

let pp fmt t =
  Format.fprintf fmt "plan on %s: %d kernels, %d memcpys, %d memsets@."
    t.arch.Arch.name (List.length t.kernels) t.memcpys t.memsets;
  List.iter (fun k -> Format.fprintf fmt "  %a" (pp_kernel t.graph) k) t.kernels
