(* The common backend interface: a backend turns a computation graph into
   a kernel plan for a target device, and carries the cost-model
   configuration of its host framework (e.g. TensorFlow's per-op
   scheduling overhead vs a compiled executor's). *)

open Astitch_ir
open Astitch_simt

type t = {
  name : string;
  cost_config : Cost_model.config;
  compile : Arch.t -> Graph.t -> Kernel_plan.t;
}

let compile backend arch graph = backend.compile arch graph

(* Compile with the structured-error contract: bare exceptions raised by
   the backend (except resource exhaustion) are converted to a
   [Compile_error.t] attributed to the backend's name. *)
let compile_result backend arch graph =
  Compile_error.protect ~pass:backend.name (fun () ->
      backend.compile arch graph)

(* Same contract for callers that want the exception flow: the returned
   backend only ever raises [Compile_error.Error]. *)
let wrap backend =
  {
    backend with
    compile =
      (fun arch graph ->
        Compile_error.guard ~pass:backend.name (fun () ->
            backend.compile arch graph));
  }
