(* The common backend interface: a backend turns a computation graph into
   a kernel plan for a target device, and carries the cost-model
   configuration of its host framework (e.g. TensorFlow's per-op
   scheduling overhead vs a compiled executor's). *)

open Astitch_ir
open Astitch_simt

type t = {
  name : string;
  cost_config : Cost_model.config;
  compile : Arch.t -> Graph.t -> Kernel_plan.t;
}

let compile backend arch graph = backend.compile arch graph
