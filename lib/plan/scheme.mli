(** The four operator-stitching schemes of the paper's Table 1. *)

type t =
  | Independent  (** no dependency with neighbours *)
  | Local  (** one-to-one element dependency; data stays in registers *)
  | Regional  (** one-to-many; shared memory, block locality first *)
  | Global  (** any dependency; global memory, parallelism first *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val memory_space : t -> string
val needs_global_barrier : t -> bool
