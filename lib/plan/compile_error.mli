(** Structured compile errors: pass name, cluster, violation kinds and
    offending ops.  Replaces stringly [failwith]/[invalid_arg] on every
    compile path so failures are attributable and recoverable. *)

open Astitch_ir

type kind =
  | Invalid_structure
  | Shared_mem_overflow
  | Barrier_deadlock
  | Unlaunchable
  | Scratch_aliasing
  | Empty_cluster
  | Pass_exception
  | Budget_exceeded
  | Injected_fault
  | Unknown_name

val kind_to_string : kind -> string

type violation = {
  kind : kind;
  message : string;
  where : string option;  (** kernel / cluster name, when per-kernel *)
  ops : Op.node_id list;  (** offending ops, when attributable *)
}

type t = {
  pass : string;
  cluster : string option;
  violations : violation list;
}

exception Error of t

val violation :
  ?ops:Op.node_id list ->
  ?where:string ->
  kind ->
  ('a, Format.formatter, unit, violation) format4 ->
  'a

val make : ?cluster:string -> pass:string -> violation list -> t
val error : ?cluster:string -> pass:string -> violation list -> exn

val fail :
  ?cluster:string ->
  ?ops:Op.node_id list ->
  pass:string ->
  kind ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Raise a single-violation [Error]. *)

val of_exn : ?cluster:string -> pass:string -> exn -> t
(** Wrap a bare exception; structured errors pass through unchanged. *)

val guard : ?cluster:string -> pass:string -> (unit -> 'a) -> 'a
(** Run [f], converting bare exceptions (except resource exhaustion) into
    structured [Error]s. *)

val protect : ?cluster:string -> pass:string -> (unit -> 'a) -> ('a, t) result

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
