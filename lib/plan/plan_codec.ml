(* Versioned binary codec for kernel plans.

   The format is deliberately dumb: little-endian fixed-width words, a
   tag byte per variant constructor, length-prefixed strings and
   sequences.  Every integer travels as 64 bits (element counts and
   byte totals overflow 32), every float as its IEEE bit pattern (so
   arch descriptors and constants round-trip exactly), and the whole
   payload is guarded by an FNV-1a 64 checksum.  Canonical by
   construction: the only non-deterministic state on a plan - the
   graph's memoized fingerprint - is not encoded, so structurally
   identical plans produce identical bytes and byte equality doubles as
   the bit-identity gate. *)

open Astitch_ir
open Astitch_simt

let version = 1
let magic = "ASPK"

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { want : int; have : int }
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "bad magic: not a plan file"
  | Unsupported_version v ->
      Printf.sprintf "unsupported codec version %d (this codec is v%d)" v
        version
  | Truncated { want; have } ->
      Printf.sprintf "truncated: need %d bytes, have %d" want have
  | Checksum_mismatch -> "checksum mismatch: payload corrupted"
  | Malformed m -> "malformed payload: " ^ m

exception Codec_error of error

(* --- Checksum ------------------------------------------------------------- *)

let fnv1a64 s ~pos ~len =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) prime
  done;
  !h

(* --- Writer --------------------------------------------------------------- *)

let w_i b n = Buffer.add_int64_le b (Int64.of_int n)
let w_f b x = Buffer.add_int64_le b (Int64.bits_of_float x)
let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let w_s b s =
  w_i b (String.length s);
  Buffer.add_string b s

let w_arr b wf a =
  w_i b (Array.length a);
  Array.iter (wf b) a

let w_list b wf l =
  w_i b (List.length l);
  List.iter (wf b) l

let w_opt b wf = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      wf b v

(* --- Reader --------------------------------------------------------------- *)

(* A bounded cursor over the payload region.  Overruns raise [Short],
   caught at the decode boundary - inside a length- and checksum-checked
   payload an overrun means the payload lies about its own structure,
   which is [Malformed], not [Truncated]. *)

exception Short

type reader = { src : string; limit : int; mutable pos : int }

let need r n = if r.pos + n > r.limit then raise Short

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let r_i r =
  let v = r_i64 r in
  Int64.to_int v

let r_f r = Int64.float_of_bits (r_i64 r)

let r_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_s r =
  let n = r_i r in
  if n < 0 then raise Short;
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_count r =
  let n = r_i r in
  if n < 0 || n > r.limit - r.pos then raise Short;
  n

let r_arr r rf =
  let n = r_count r in
  Array.init n (fun _ -> rf r)

let r_list r rf =
  let n = r_count r in
  List.init n (fun _ -> rf r)

let r_opt r rf = match r_u8 r with 0 -> None | 1 -> Some (rf r) | _ -> raise Short

let malformed fmt = Printf.ksprintf (fun m -> raise (Codec_error (Malformed m))) fmt

(* --- Enums ---------------------------------------------------------------- *)

let unary_tag : Op.unary_kind -> int = function
  | Neg -> 0 | Abs -> 1 | Sign -> 2 | Relu -> 3 | Rcp -> 4 | Exp -> 5
  | Log -> 6 | Tanh -> 7 | Sigmoid -> 8 | Sqrt -> 9 | Rsqrt -> 10 | Erf -> 11

let unary_of_tag : int -> Op.unary_kind = function
  | 0 -> Neg | 1 -> Abs | 2 -> Sign | 3 -> Relu | 4 -> Rcp | 5 -> Exp
  | 6 -> Log | 7 -> Tanh | 8 -> Sigmoid | 9 -> Sqrt | 10 -> Rsqrt | 11 -> Erf
  | t -> malformed "unary kind tag %d" t

let binary_tag : Op.binary_kind -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Max -> 4 | Min -> 5
  | Pow -> 6 | Lt -> 7 | Gt -> 8 | Eq -> 9

let binary_of_tag : int -> Op.binary_kind = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Max | 5 -> Min
  | 6 -> Pow | 7 -> Lt | 8 -> Gt | 9 -> Eq
  | t -> malformed "binary kind tag %d" t

let reduce_tag : Op.reduce_kind -> int = function
  | Sum -> 0 | Max_r -> 1 | Min_r -> 2 | Mean -> 3

let reduce_of_tag : int -> Op.reduce_kind = function
  | 0 -> Sum | 1 -> Max_r | 2 -> Min_r | 3 -> Mean
  | t -> malformed "reduce kind tag %d" t

let dtype_tag : Dtype.t -> int = function F32 -> 0 | F16 -> 1 | I32 -> 2 | Pred -> 3

let dtype_of_tag : int -> Dtype.t = function
  | 0 -> F32 | 1 -> F16 | 2 -> I32 | 3 -> Pred
  | t -> malformed "dtype tag %d" t

let scheme_tag : Scheme.t -> int = function
  | Independent -> 0 | Local -> 1 | Regional -> 2 | Global -> 3

let scheme_of_tag : int -> Scheme.t = function
  | 0 -> Independent | 1 -> Local | 2 -> Regional | 3 -> Global
  | t -> malformed "scheme tag %d" t

let placement_tag : Kernel_plan.placement -> int = function
  | Register -> 0 | Shared_mem -> 1 | Global_scratch -> 2 | Device_mem -> 3

let placement_of_tag : int -> Kernel_plan.placement = function
  | 0 -> Register | 1 -> Shared_mem | 2 -> Global_scratch | 3 -> Device_mem
  | t -> malformed "placement tag %d" t

let kind_tag : Kernel_plan.kernel_kind -> int = function
  | Codegen -> 0 | Library -> 1 | Copy -> 2

let kind_of_tag : int -> Kernel_plan.kernel_kind = function
  | 0 -> Codegen | 1 -> Library | 2 -> Copy
  | t -> malformed "kernel kind tag %d" t

(* --- Ops ------------------------------------------------------------------ *)

let w_int_arr b a = w_arr b w_i a
let r_int_arr r = r_arr r r_i

let w_op b : Op.t -> unit = function
  | Parameter { name } ->
      w_u8 b 0;
      w_s b name
  | Constant { value } ->
      w_u8 b 1;
      w_f b value
  | Iota { axis } ->
      w_u8 b 2;
      w_i b axis
  | Unary { kind; input } ->
      w_u8 b 3;
      w_u8 b (unary_tag kind);
      w_i b input
  | Binary { kind; lhs; rhs } ->
      w_u8 b 4;
      w_u8 b (binary_tag kind);
      w_i b lhs;
      w_i b rhs
  | Broadcast { input; dims } ->
      w_u8 b 5;
      w_i b input;
      w_int_arr b dims
  | Reduce { input; kind; axes } ->
      w_u8 b 6;
      w_i b input;
      w_u8 b (reduce_tag kind);
      w_int_arr b axes
  | Reshape { input } ->
      w_u8 b 7;
      w_i b input
  | Transpose { input; perm } ->
      w_u8 b 8;
      w_i b input;
      w_int_arr b perm
  | Select { pred; on_true; on_false } ->
      w_u8 b 9;
      w_i b pred;
      w_i b on_true;
      w_i b on_false
  | Concat { inputs; axis } ->
      w_u8 b 10;
      w_list b w_i inputs;
      w_i b axis
  | Slice { input; starts; stops } ->
      w_u8 b 11;
      w_i b input;
      w_int_arr b starts;
      w_int_arr b stops
  | Pad { input; low; high } ->
      w_u8 b 12;
      w_i b input;
      w_int_arr b low;
      w_int_arr b high
  | Gather { params; indices } ->
      w_u8 b 13;
      w_i b params;
      w_i b indices
  | Scatter_add { indices; updates; rows } ->
      w_u8 b 14;
      w_i b indices;
      w_i b updates;
      w_i b rows
  | Max_pool { input; window; stride } ->
      w_u8 b 15;
      w_i b input;
      w_i b window;
      w_i b stride
  | Dot { lhs; rhs } ->
      w_u8 b 16;
      w_i b lhs;
      w_i b rhs
  | Conv2d { input; filter; stride } ->
      w_u8 b 17;
      w_i b input;
      w_i b filter;
      w_i b stride

let r_op r : Op.t =
  match r_u8 r with
  | 0 -> Parameter { name = r_s r }
  | 1 -> Constant { value = r_f r }
  | 2 -> Iota { axis = r_i r }
  | 3 ->
      let kind = unary_of_tag (r_u8 r) in
      Unary { kind; input = r_i r }
  | 4 ->
      let kind = binary_of_tag (r_u8 r) in
      let lhs = r_i r in
      Binary { kind; lhs; rhs = r_i r }
  | 5 ->
      let input = r_i r in
      Broadcast { input; dims = r_int_arr r }
  | 6 ->
      let input = r_i r in
      let kind = reduce_of_tag (r_u8 r) in
      Reduce { input; kind; axes = r_int_arr r }
  | 7 -> Reshape { input = r_i r }
  | 8 ->
      let input = r_i r in
      Transpose { input; perm = r_int_arr r }
  | 9 ->
      let pred = r_i r in
      let on_true = r_i r in
      Select { pred; on_true; on_false = r_i r }
  | 10 ->
      let inputs = r_list r r_i in
      Concat { inputs; axis = r_i r }
  | 11 ->
      let input = r_i r in
      let starts = r_int_arr r in
      Slice { input; starts; stops = r_int_arr r }
  | 12 ->
      let input = r_i r in
      let low = r_int_arr r in
      Pad { input; low; high = r_int_arr r }
  | 13 ->
      let params = r_i r in
      Gather { params; indices = r_i r }
  | 14 ->
      let indices = r_i r in
      let updates = r_i r in
      Scatter_add { indices; updates; rows = r_i r }
  | 15 ->
      let input = r_i r in
      let window = r_i r in
      Max_pool { input; window; stride = r_i r }
  | 16 ->
      let lhs = r_i r in
      Dot { lhs; rhs = r_i r }
  | 17 ->
      let input = r_i r in
      let filter = r_i r in
      Conv2d { input; filter; stride = r_i r }
  | t -> malformed "op tag %d" t

(* --- Graph ---------------------------------------------------------------- *)

let w_graph b g =
  w_i b (Graph.num_nodes g);
  for i = 0 to Graph.num_nodes g - 1 do
    let n = Graph.node g i in
    w_op b n.Graph.op;
    w_int_arr b n.Graph.shape;
    w_u8 b (dtype_tag n.Graph.dtype)
  done;
  w_list b w_i (Graph.outputs g)

let r_graph r =
  let n = r_count r in
  let nodes =
    Array.init n (fun id ->
        let op = r_op r in
        let shape = r_int_arr r in
        let dtype = dtype_of_tag (r_u8 r) in
        { Graph.id; op; shape; dtype })
  in
  let outputs = r_list r r_i in
  try Graph.of_nodes nodes ~outputs
  with Graph.Ill_formed m -> malformed "graph: %s" m

(* --- Arch ----------------------------------------------------------------- *)

(* The full device descriptor travels with the plan (not just a name):
   plans compiled against synthetic arches - the tight-shared-mem test
   device, future device-profile families - round-trip without a
   registry lookup. *)
let w_arch b (a : Arch.t) =
  w_s b a.name;
  List.iter (w_i b)
    [
      a.num_sms; a.warp_size; a.max_threads_per_sm; a.max_blocks_per_sm;
      a.max_warps_per_sm; a.max_threads_per_block; a.registers_per_sm;
      a.max_registers_per_thread; a.shared_mem_per_sm; a.shared_mem_per_block;
      a.l2_cache_bytes;
    ];
  List.iter (w_f b)
    [
      a.dram_bandwidth_gbs; a.fp32_tflops; a.fp16_tflops; a.library_tflops;
      a.sm_clock_ghz;
    ]

let r_arch r : Arch.t =
  let name = r_s r in
  let num_sms = r_i r in
  let warp_size = r_i r in
  let max_threads_per_sm = r_i r in
  let max_blocks_per_sm = r_i r in
  let max_warps_per_sm = r_i r in
  let max_threads_per_block = r_i r in
  let registers_per_sm = r_i r in
  let max_registers_per_thread = r_i r in
  let shared_mem_per_sm = r_i r in
  let shared_mem_per_block = r_i r in
  let l2_cache_bytes = r_i r in
  let dram_bandwidth_gbs = r_f r in
  let fp32_tflops = r_f r in
  let fp16_tflops = r_f r in
  let library_tflops = r_f r in
  let sm_clock_ghz = r_f r in
  {
    name; num_sms; warp_size; max_threads_per_sm; max_blocks_per_sm;
    max_warps_per_sm; max_threads_per_block; registers_per_sm;
    max_registers_per_thread; shared_mem_per_sm; shared_mem_per_block;
    l2_cache_bytes; dram_bandwidth_gbs; fp32_tflops; fp16_tflops;
    library_tflops; sm_clock_ghz;
  }

(* --- Mappings, kernels, plan ---------------------------------------------- *)

let w_mapping b : Thread_mapping.t -> unit = function
  | Elementwise { elements; block; grid; rows } ->
      w_u8 b 0;
      w_i b elements;
      w_i b block;
      w_i b grid;
      w_opt b w_i rows
  | Row_reduce
      { rows; row_length; threads_per_row; rows_per_block;
        row_groups_per_block; split } ->
      w_u8 b 1;
      List.iter (w_i b)
        [ rows; row_length; threads_per_row; rows_per_block;
          row_groups_per_block; split ]
  | Column_reduce { rows; row_length; block; grid } ->
      w_u8 b 2;
      List.iter (w_i b) [ rows; row_length; block; grid ]

let r_mapping r : Thread_mapping.t =
  match r_u8 r with
  | 0 ->
      let elements = r_i r in
      let block = r_i r in
      let grid = r_i r in
      Elementwise { elements; block; grid; rows = r_opt r r_i }
  | 1 ->
      let rows = r_i r in
      let row_length = r_i r in
      let threads_per_row = r_i r in
      let rows_per_block = r_i r in
      let row_groups_per_block = r_i r in
      Row_reduce
        { rows; row_length; threads_per_row; rows_per_block;
          row_groups_per_block; split = r_i r }
  | 2 ->
      let rows = r_i r in
      let row_length = r_i r in
      let block = r_i r in
      Column_reduce { rows; row_length; block; grid = r_i r }
  | t -> malformed "mapping tag %d" t

let w_cop b (o : Kernel_plan.compiled_op) =
  w_i b o.id;
  w_u8 b (scheme_tag o.scheme);
  w_u8 b (placement_tag o.placement);
  w_mapping b o.mapping;
  w_i b o.recompute;
  w_i b o.group

let r_cop r : Kernel_plan.compiled_op =
  let id = r_i r in
  let scheme = scheme_of_tag (r_u8 r) in
  let placement = placement_of_tag (r_u8 r) in
  let mapping = r_mapping r in
  let recompute = r_i r in
  { id; scheme; placement; mapping; recompute; group = r_i r }

let w_launch b (l : Astitch_simt.Launch.t) =
  w_i b l.grid;
  w_i b l.block;
  w_i b l.regs_per_thread;
  w_i b l.shared_mem_per_block

let r_launch r : Astitch_simt.Launch.t =
  let grid = r_i r in
  let block = r_i r in
  let regs_per_thread = r_i r in
  let shared_mem_per_block = r_i r in
  try
    Astitch_simt.Launch.make ~regs_per_thread ~shared_mem_per_block ~grid
      ~block ()
  with Astitch_simt.Launch.Invalid m -> malformed "launch: %s" m

let w_kernel b (k : Kernel_plan.kernel) =
  w_s b k.name;
  w_u8 b (kind_tag k.kind);
  w_list b w_cop k.ops;
  w_launch b k.launch;
  w_i b k.barriers;
  w_i b k.scratch_bytes

let r_kernel r : Kernel_plan.kernel =
  let name = r_s r in
  let kind = kind_of_tag (r_u8 r) in
  let ops = r_list r r_cop in
  let launch = r_launch r in
  let barriers = r_i r in
  { name; kind; ops; launch; barriers; scratch_bytes = r_i r }

let w_cls b : Batch_axis.cls -> unit = function
  | Invariant -> w_u8 b 0
  | Scaled { axis; unit } ->
      w_u8 b 1;
      w_i b axis;
      w_i b unit

let r_cls r : Batch_axis.cls =
  match r_u8 r with
  | 0 -> Invariant
  | 1 ->
      let axis = r_i r in
      Scaled { axis; unit = r_i r }
  | t -> malformed "batch-axis cls tag %d" t

let w_batch b (p : Batch_axis.plan) =
  w_i b p.max_batch;
  w_arr b w_cls p.cls

let r_batch r : Batch_axis.plan =
  let max_batch = r_i r in
  { max_batch; cls = r_arr r r_cls }

let w_plan b (p : Kernel_plan.t) =
  w_arch b p.arch;
  w_graph b p.graph;
  w_list b w_kernel p.kernels;
  w_i b p.memcpys;
  w_i b p.memsets;
  w_i b p.memcpy_bytes;
  w_opt b w_batch p.batch

let r_plan r : Kernel_plan.t =
  let arch = r_arch r in
  let graph = r_graph r in
  let kernels = r_list r r_kernel in
  let memcpys = r_i r in
  let memsets = r_i r in
  let memcpy_bytes = r_i r in
  let batch = r_opt r r_batch in
  { arch; graph; kernels; memcpys; memsets; memcpy_bytes; batch }

(* --- Entry points --------------------------------------------------------- *)

let encode plan =
  let payload = Buffer.create 4096 in
  w_plan payload plan;
  let payload = Buffer.contents payload in
  let b = Buffer.create (String.length payload + 24) in
  Buffer.add_string b magic;
  Buffer.add_int64_le b (Int64.of_int version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int64_le b (fnv1a64 payload ~pos:0 ~len:(String.length payload));
  Buffer.contents b

let decode_exn s =
  let len = String.length s in
  if len < 4 then raise (Codec_error (Truncated { want = 4; have = len }));
  if String.sub s 0 4 <> magic then raise (Codec_error Bad_magic);
  if len < 20 then raise (Codec_error (Truncated { want = 20; have = len }));
  let v = Int64.to_int (String.get_int64_le s 4) in
  if v <> version then raise (Codec_error (Unsupported_version v));
  let plen = Int64.to_int (String.get_int64_le s 12) in
  let want = 20 + plen + 8 in
  if plen < 0 || len < want then
    raise (Codec_error (Truncated { want; have = len }));
  if len > want then
    raise
      (Codec_error
         (Malformed
            (Printf.sprintf "%d trailing bytes after checksum" (len - want))));
  let stored = String.get_int64_le s (20 + plen) in
  if not (Int64.equal stored (fnv1a64 s ~pos:20 ~len:plen)) then
    raise (Codec_error Checksum_mismatch);
  let r = { src = s; limit = 20 + plen; pos = 20 } in
  let plan =
    try r_plan r with
    | Short -> raise (Codec_error (Malformed "payload exhausted mid-field"))
    | Thread_mapping.Invalid m ->
        raise (Codec_error (Malformed ("mapping: " ^ m)))
    | Shape.Invalid m -> raise (Codec_error (Malformed ("shape: " ^ m)))
  in
  if r.pos <> r.limit then
    raise
      (Codec_error
         (Malformed
            (Printf.sprintf "%d trailing payload bytes" (r.limit - r.pos))));
  plan

let decode s =
  match decode_exn s with
  | plan -> Ok plan
  | exception Codec_error e -> Error e

let equal a b = String.equal (encode a) (encode b)
