(* The four operator-stitching schemes of Table 1. *)

type t =
  | Independent (* no dependency with neighbours *)
  | Local (* one-to-one element dependency; data stays in registers *)
  | Regional (* one-to-many; data in shared memory, block locality first *)
  | Global (* any dependency; data in global memory, parallelism first *)

let to_string = function
  | Independent -> "independent"
  | Local -> "local"
  | Regional -> "regional"
  | Global -> "global"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let memory_space = function
  | Independent -> "none"
  | Local -> "register"
  | Regional -> "shared memory"
  | Global -> "global memory"

(* Global stitching needs an in-kernel global barrier between the producer
   group and its consumers; regional needs only a block-level barrier. *)
let needs_global_barrier = function
  | Global -> true
  | Independent | Local | Regional -> false
