(** Stitching-scope identification (paper Sec 4.1): memory-intensive
    subgraph clustering plus remote stitching of mutually-independent
    clusters. *)

open Astitch_ir

type cluster = { id : int; nodes : Op.node_id list (** ascending ids *) }

val is_clusterable : Graph.t -> Op.node_id -> bool
(** Memory-intensive and not a leaf (parameter/constant/iota). *)

val compute_depths : Graph.t -> int array
(** Per node: compute-intensive ops on the longest path from the inputs.
    Clusters never span depths, which guarantees cycle-freedom. *)

val clusters : Graph.t -> cluster list
(** Maximal same-depth connected components of memory-intensive nodes. *)

val remote_stitch_groups :
  ?max_merge_width:int -> Graph.t -> cluster list -> cluster list list
(** Group mutually-unreachable clusters (up to [max_merge_width] per
    stitch op, default 4).  Clusters are levelled by longest path in the
    reachability DAG and grouped within a level, so neither the merged
    kernels nor the grouped kernel graph can become cyclic. *)

val remote_stitch :
  ?max_merge_width:int -> Graph.t -> cluster list -> cluster list
(** {!remote_stitch_groups} with each group flattened to one cluster. *)
