(** Thread mappings: how an operator's output elements map onto the
    (grid, block) geometry, including the paper's adaptive dimensions
    (horizontal/vertical task packing and task splitting, Sec 3.3). *)

type t =
  | Elementwise of {
      elements : int;
      block : int;
      grid : int;
      rows : int option;
          (** row geometry when aligned with a reduce group; drives
              block-locality checks *)
    }
  | Row_reduce of {
      rows : int;
      row_length : int;
      threads_per_row : int;
      rows_per_block : int;  (** horizontal packing *)
      row_groups_per_block : int;  (** vertical packing *)
      split : int;  (** task splitting (cross-block atomics) *)
    }
  | Column_reduce of { rows : int; row_length : int; block : int; grid : int }

exception Invalid of string

val block : t -> int
val grid : t -> int
val uses_atomics : t -> bool

val validate : ?max_block:int -> t -> unit
(** @raise Invalid on inconsistent geometry. *)

val contiguous_outputs_per_block : t -> int option
(** Output elements each block produces, when contiguous; [None] when
    block outputs interleave (split/column reduces). *)

val row_partition : t -> (int * int) option
(** [(rows, rows_per_grid_block)] partition of the logical row space. *)

val block_aligned : t -> t -> bool
(** Same grid and identical row partition: block [i] of the consumer reads
    exactly what block [i] of the producer wrote. *)

val rebind : t -> num:int -> den:int -> t
(** Re-pack a mapping compiled at one batch extent for a smaller one
    ([num]/[den] = b/max <= 1): batch-scaled element and row counts
    shrink by the exact ratio, block geometry (threads per row, packing
    factors, split) is preserved, and extent-derived grids shrink with
    the work.  The result is validated.
    @raise Invalid if the rebound geometry is inconsistent. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
