(** Kernel -> tape lowering for the fused execution engine: classify
    every op of every kernel into its storage role (scalarized register,
    per-block staged slab, barrier-sequenced global scratch slot, full
    arena buffer, or reshape view), validate availability structurally,
    sequence each kernel's global-scratch traffic into barrier-separated
    segments, and compute plan-wide liveness intervals for the buffers
    the engine must allocate.  Kernels using an unsupported pattern lower
    to [Fallback] with a reason and run through the reference per-node
    path instead. *)

open Astitch_ir

type role =
  | Inline  (** Register: recomputed inside consumer loops *)
  | Staged of { block_elems : int }  (** Shared_mem: per-block slab *)
  | Staged_global of { elems : int; demoted : bool }
      (** Global_scratch: per-kernel scratch slot sequenced by in-kernel
          global barriers.  [demoted] marks a Shared_mem op that could
          not be staged regionally and fell through to global staging
          (legal-barrier launches only). *)
  | Materialize  (** full buffer from the arena *)
  | Alias of { root : Op.node_id }  (** reshape view of full storage *)

type kernel_tape = {
  kernel : Kernel_plan.kernel;
  pos : int;  (** kernel position in plan order *)
  roles : (Op.node_id * role) list;  (** op order, first occurrence only *)
  materialized : Op.node_id list;  (** ids set computed when the kernel ran *)
  purged : Op.node_id list;  (** on-chip ids unavailable after the kernel *)
  barriers : int;  (** global barrier points executed per run *)
  barrier_before : Op.node_id list;
      (** producers whose action a barrier precedes: they read a scratch
          value written since the previous barrier point *)
  gslots : (Op.node_id * int * int * int) list;
      (** staged-global slot intervals: id, elems, def / last-read
          action index within this kernel *)
  demotions : (Op.node_id * string) list;
      (** Shared_mem ops demoted to global staging, with the regional
          reject reason that forced each demotion *)
}

type lowered =
  | Fused of kernel_tape
  | Fallback of { kernel : Kernel_plan.kernel; pos : int; reason : string }

type interval = {
  node : Op.node_id;
  elems : int;
  def_pos : int;
  last_pos : int;  (** [num_positions] when the buffer backs an output *)
}

type t = {
  plan : Kernel_plan.t;
  kernels : lowered list;  (** plan order *)
  intervals : interval list;  (** fused-materialized buffers only *)
  num_positions : int;  (** kernel count; the output-read position *)
}

val lower : Kernel_plan.t -> t
(** Structural lowering; never raises.  Interval last positions account
    for reads through reshape views (a view can never outlive the storage
    it aliases) and pin output buffers to [num_positions].  A kernel
    whose barrier sequencing requires an illegal launch (grid wider than
    the co-resident wave, [Barrier.is_legal]) lowers to [Fallback]. *)

val scalarizable : Op.t -> bool
(** Structural mirror of [Scalar_eval.scalarizable] (lib/tensor). *)
