(** Kernel -> tape lowering for the fused execution engine: classify
    every op of every kernel into its storage role (scalarized register,
    per-block staged slab, full arena buffer, or reshape view), validate
    availability structurally, and compute plan-wide liveness intervals
    for the buffers the engine must allocate.  Kernels using an
    unsupported pattern lower to [Fallback] with a reason and run through
    the reference per-node path instead. *)

open Astitch_ir

type role =
  | Inline  (** Register: recomputed inside consumer loops *)
  | Staged of { block_elems : int }  (** Shared_mem: per-block slab *)
  | Materialize of { scratch : bool }  (** full buffer from the arena *)
  | Alias of { root : Op.node_id }  (** reshape view of full storage *)

type kernel_tape = {
  kernel : Kernel_plan.kernel;
  pos : int;  (** kernel position in plan order *)
  roles : (Op.node_id * role) list;  (** op order, first occurrence only *)
  materialized : Op.node_id list;  (** ids set computed when the kernel ran *)
  purged : Op.node_id list;  (** on-chip ids unavailable after the kernel *)
}

type lowered =
  | Fused of kernel_tape
  | Fallback of { kernel : Kernel_plan.kernel; pos : int; reason : string }

type interval = {
  node : Op.node_id;
  elems : int;
  def_pos : int;
  last_pos : int;  (** [num_positions] when the buffer backs an output *)
}

type t = {
  plan : Kernel_plan.t;
  kernels : lowered list;  (** plan order *)
  intervals : interval list;  (** fused-materialized buffers only *)
  num_positions : int;  (** kernel count; the output-read position *)
}

val lower : Kernel_plan.t -> t
(** Structural lowering; never raises.  Interval last positions account
    for reads through reshape views (a view can never outlive the storage
    it aliases) and pin output buffers to [num_positions]. *)

val scalarizable : Op.t -> bool
(** Structural mirror of [Scalar_eval.scalarizable] (lib/tensor). *)
