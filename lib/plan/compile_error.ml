(* Structured compile errors.

   The production-JIT posture (paper Sec 6.3: thousands of jobs weekly)
   demands that a stitching failure never surface as a bare [Failure] or
   [Invalid_argument]: every compile path reports *which pass* failed, on
   *which cluster*, with *which invariant violations* over *which ops*, so
   the resilience layer can retry just the offending cluster and callers
   can log something actionable.  [check_all]-style validators return
   [violation list]s instead of raising on the first problem. *)

open Astitch_ir

type kind =
  | Invalid_structure (* topological / availability / placement invariants *)
  | Shared_mem_overflow (* regional buffers exceed the declared footprint *)
  | Barrier_deadlock (* global barrier with grid > one wave *)
  | Unlaunchable (* launch exceeds device resource limits *)
  | Scratch_aliasing (* two live scratch buffers overlap *)
  | Empty_cluster (* a stitch scope with no ops *)
  | Pass_exception (* a compiler pass raised a bare exception *)
  | Budget_exceeded (* per-pass compile-time budget blown (Sec 6.4.1) *)
  | Injected_fault (* a fault-injection site fired (testing only) *)
  | Unknown_name (* lookup of a model / backend / experiment failed *)

let kind_to_string = function
  | Invalid_structure -> "invalid-structure"
  | Shared_mem_overflow -> "shared-mem-overflow"
  | Barrier_deadlock -> "barrier-deadlock"
  | Unlaunchable -> "unlaunchable"
  | Scratch_aliasing -> "scratch-aliasing"
  | Empty_cluster -> "empty-cluster"
  | Pass_exception -> "pass-exception"
  | Budget_exceeded -> "budget-exceeded"
  | Injected_fault -> "injected-fault"
  | Unknown_name -> "unknown-name"

type violation = {
  kind : kind;
  message : string;
  where : string option; (* kernel / cluster name, when per-kernel *)
  ops : Op.node_id list; (* offending ops, when attributable *)
}

type t = {
  pass : string; (* compiler pass that failed, e.g. "mem-planning" *)
  cluster : string option; (* stitch scope being compiled, if any *)
  violations : violation list; (* at least one *)
}

exception Error of t

let violation ?(ops = []) ?where kind fmt =
  Format.kasprintf (fun message -> { kind; message; where; ops }) fmt

let make ?cluster ~pass violations = { pass; cluster; violations }

let error ?cluster ~pass violations = Error (make ?cluster ~pass violations)

let fail ?cluster ?(ops = []) ~pass kind fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Error
           {
             pass;
             cluster;
             violations = [ { kind; message; where = cluster; ops } ];
           }))
    fmt

(* Wrap an arbitrary exception into a structured error.  Structured errors
   pass through untouched so the innermost attribution survives. *)
let of_exn ?cluster ~pass = function
  | Error t -> t
  | e ->
      {
        pass;
        cluster;
        violations =
          [
            {
              kind = Pass_exception;
              message = Printexc.to_string e;
              where = cluster;
              ops = [];
            };
          ];
      }

(* Run [f], converting any bare exception into a structured [Error].
   Genuine resource exhaustion is not a compile error and propagates. *)
let guard ?cluster ~pass f =
  try f () with
  | Error _ as e -> raise e
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e -> raise (Error (of_exn ?cluster ~pass e))

let protect ?cluster ~pass f =
  match guard ?cluster ~pass f with v -> Ok v | exception Error t -> Error t

let pp_violation fmt v =
  Format.fprintf fmt "[%s]%s %s" (kind_to_string v.kind)
    (match v.where with Some w -> " " ^ w ^ ":" | None -> "")
    v.message;
  match v.ops with
  | [] -> ()
  | ops ->
      Format.fprintf fmt " (ops:%s)"
        (String.concat ","
           (List.map (fun id -> Printf.sprintf " %%%d" id) ops))

let pp fmt t =
  Format.fprintf fmt "compile error in pass %s%s:" t.pass
    (match t.cluster with Some c -> " on cluster " ^ c | None -> "");
  List.iter (fun v -> Format.fprintf fmt "@.  %a" pp_violation v) t.violations

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Error t -> Some (to_string t)
    | _ -> None)
