(** Compiled execution plans: the common output format of every backend and
    the single source for cost estimation, counters, numerical execution
    and structural validation. *)

open Astitch_ir
open Astitch_simt

type placement =
  | Register  (** per-thread; lives only inside consuming threads *)
  | Shared_mem  (** per-block scratch; regional stitching *)
  | Global_scratch  (** device scratch consumed inside the same kernel *)
  | Device_mem  (** materialized tensor visible to later kernels *)

val placement_to_string : placement -> string

type compiled_op = {
  id : Op.node_id;
  scheme : Scheme.t;
  placement : placement;
  mapping : Thread_mapping.t;
  recompute : int;  (** avg times each output element is computed; >= 1 *)
  group : int;
      (** op group (schedule) within the kernel; reads are cached in
          registers per group, so cross-group reads of one operand count
          separately *)
}

type kernel_kind =
  | Codegen
  | Library
  | Copy  (** standalone layout op implemented as cudaMemcpy DtoD *)

type kernel = {
  name : string;
  kind : kernel_kind;
  ops : compiled_op list;  (** execution order *)
  launch : Launch.t;
  barriers : int;  (** in-kernel global barriers *)
  scratch_bytes : int;  (** global-scratch arena after liveness reuse *)
}

type t = {
  arch : Arch.t;
  graph : Graph.t;
  kernels : kernel list;  (** execution order *)
  memcpys : int;
  memsets : int;
  memcpy_bytes : int;
  batch : Batch_axis.plan option;
      (** symbolic batch extent when the plan was compiled at the max
          batch of a shape-polymorphic family; [None] for fixed-shape
          plans.  Execution contexts use it to rebind loop bounds and
          thread mappings per batch (see [Executor.run_context]). *)
}

val kernel_node_ids : kernel -> Op.node_id list
val is_memory_intensive_kernel : kernel -> bool
val memory_intensive_kernels : t -> kernel list
val compute_intensive_kernels : t -> kernel list
val copy_kernels : t -> kernel list

(** Table 3's "CPY": memcpys + memsets + standalone copy kernels. *)
val cpy_count : t -> int
val find_op : kernel -> Op.node_id -> compiled_op option
val producer_kernel : t -> Op.node_id -> kernel option

type op_index
(** One kernel's ops indexed by node id; O(1) lookup.  Hot paths
    (invariant checking, the runtime executor) build this once per kernel
    instead of scanning the op list per query. *)

val index_ops : kernel -> op_index
val find_op_in : op_index -> Op.node_id -> compiled_op option

val materializer_index : t -> (Op.node_id, kernel) Hashtbl.t
(** Node id -> the kernel that materializes it to device memory (first in
    execution order); the indexed form of {!producer_kernel}. *)

val op_insts : Graph.t -> Op.node_id -> int
(** FP32 instructions for one full evaluation of the op. *)

val intermediate_stays_in_l2 : t -> Op.node_id -> bool
val is_leaf : Graph.t -> Op.node_id -> bool

val kernel_work : t -> kernel -> Cost_model.work
(** DRAM traffic + instruction work of a kernel; see the implementation
    notes for the L2 model that reproduces Table 5's counter structure. *)

val check_kernel : Arch.t -> Graph.t -> kernel -> Compile_error.violation list
(** Intra-kernel invariants only (order, placement legality, shared-memory
    footprint, barrier and launch legality); empty when the kernel is
    valid in isolation. *)

val check_all : t -> Compile_error.violation list
(** Collect ALL structural invariant violations (availability, placement
    legality, shared-memory budgets, barrier legality) instead of failing
    on the first — lets the resilience layer repair per-kernel. *)

val check : t -> unit
(** Validate all structural invariants.
    @raise Compile_error.Error with every violation found. *)

val toposort_kernels : Graph.t -> kernel list -> kernel list
(** Order kernels by data dependency (required after remote stitching,
    where op-id order is no longer a schedule).
    @raise Compile_error.Error on cyclic kernel dependencies. *)

val pp_kernel : Graph.t -> Format.formatter -> kernel -> unit
val pp : Format.formatter -> t -> unit
