(** Deterministic fault-injection registry with named sites in the main
    compiler passes.  Armed faults either raise a structured
    [Compile_error] or corrupt a pass's result (seeded); [fuel] bounds how
    many site hits fire, so degraded retries can succeed. *)

type site =
  | Clustering
  | Dominant_merging
  | Mem_planning
  | Launch_config
  | Codegen

val all_sites : site list
val site_to_string : site -> string
val site_of_string : string -> site option

type mode = Raise | Corrupt

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type plan = { site : site; mode : mode; seed : int; fuel : int }

val plan : ?mode:mode -> ?seed:int -> ?fuel:int -> site -> plan
(** Defaults: [mode = Raise], [seed = 0], [fuel = 1]. *)

val arm : plan list -> unit
(** Replace the armed set and reset the firing counter. *)

val disarm : unit -> unit
val fired : unit -> int
val active : unit -> bool

val epoch : unit -> int
(** Monotonic count of {!arm} calls.  An observer that snapshots the
    epoch around a compile can tell whether faults were armed inside it,
    even though the compile disarms before returning. *)

val check : site -> pass:string -> int option
(** Called at instrumentation points.  [Some seed] = corrupt the result;
    raises [Compile_error.Error] with kind [Injected_fault] for an armed
    [Raise] fault; [None] = proceed normally.  Consumes one fuel. *)
