(** Deterministic fault-injection registry with named sites in the main
    compiler passes and the serving runtime's execution path.  Armed
    faults either raise a structured error, corrupt a site's result
    (seeded), or stall (a seeded sleep); [fuel] bounds how many site
    hits fire, so degraded retries can succeed.  Fuel and firing
    counters are atomic — the registry is shared by compile domains and
    serving worker domains. *)

type site =
  (* compile pipeline *)
  | Clustering
  | Dominant_merging
  | Mem_planning
  | Launch_config
  | Codegen
  (* serving runtime *)
  | Kernel_exec
  | Staged_restage
  | Pack
  | Unpack
  | Worker_loop

val all_sites : site list
(** The compile-pipeline sites (historical name: the resilience sweeps
    index into this list positionally). *)

val runtime_sites : site list
(** The serving-runtime sites. *)

val every_site : site list
(** [all_sites @ runtime_sites]. *)

val is_runtime_site : site -> bool
val site_to_string : site -> string
val site_of_string : string -> site option

type mode = Raise | Corrupt | Stall

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type plan = { site : site; mode : mode; seed : int; fuel : int }

val plan : ?mode:mode -> ?seed:int -> ?fuel:int -> site -> plan
(** Defaults: [mode = Raise], [seed = 0], [fuel = 1]. *)

exception Runtime_fault of { site : site; seed : int; pass : string }
(** What a [Raise]-mode runtime fault throws ({!check_runtime}); the
    serving supervision layer catches it like any other worker crash. *)

val stall_s : int -> float
(** The seeded stall duration (1-10ms) a [Stall]-mode fault sleeps. *)

val arm : plan list -> unit
(** Replace the armed set and reset the firing counters. *)

val disarm : unit -> unit

val fired : unit -> int
(** Total firings (compile + runtime) since the last {!arm}. *)

val compile_fired : unit -> int
(** Compile-site firings only — what the plan cache's fault watch
    compares, so runtime-only faults don't poison compile caching. *)

val active : unit -> bool
(** Any armed fault with fuel left, at any site. *)

val compile_active : unit -> bool
(** An armed compile-site fault with fuel left exists. *)

val runtime_active : unit -> bool
(** An armed runtime-site fault with fuel left exists — the serving
    path's cheap guard before consulting {!check_runtime}. *)

val epoch : unit -> int
(** Monotonic count of {!arm} calls.  An observer that snapshots the
    epoch around a compile can tell whether faults were armed inside it,
    even though the compile disarms before returning. *)

val check : site -> pass:string -> int option
(** Called at compile-pass instrumentation points.  [Some seed] =
    corrupt the result; raises [Compile_error.Error] with kind
    [Injected_fault] for an armed [Raise] fault; sleeps for [Stall];
    [None] = proceed normally.  Consumes one fuel. *)

val check_runtime : site -> pass:string -> int option
(** {!check} for runtime sites: [Raise] throws {!Runtime_fault} instead
    of a [Compile_error] (execution failures are not compile errors). *)
