(* Helpers shared by every backend when lowering graphs to kernels. *)

open Astitch_ir
open Astitch_simt

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  if n <= 1 then 1 else go 1

let round_up_to m n = (n + m - 1) / m * m

let ceil_div a b = (a + b - 1) / b

(* Threads XLA-style codegen would give one reduction row: the row length
   rounded to a warp, capped at the block limit. *)
let threads_for_row ~warp_size ~max_block row_length =
  Stdlib.min max_block (Stdlib.max warp_size (round_up_to warp_size (Stdlib.min max_block row_length)))

let compiled_op ?(scheme = Scheme.Local) ?(placement = Kernel_plan.Device_mem)
    ?(recompute = 1) ?(group = 0) ~mapping id =
  { Kernel_plan.id; scheme; placement; mapping; recompute; group }

(* Compute-intensive ops run as vendor-library calls (cuBLAS / cuDNN):
   one kernel per op for every backend. *)
let library_kernel (arch : Arch.t) g id =
  let out_elems = Graph.num_elements g id in
  let block = 256 in
  (* library kernels tile for high occupancy; cap the grid at 8 waves *)
  let grid =
    Stdlib.max 1
      (Stdlib.min (ceil_div out_elems block) (arch.num_sms * 8))
  in
  let mapping =
    Thread_mapping.Elementwise { elements = out_elems; block; grid; rows = None }
  in
  let launch = Launch.make ~regs_per_thread:64 ~grid ~block () in
  {
    Kernel_plan.name = Printf.sprintf "%s_%d" (Op.mnemonic (Graph.op g id)) id;
    kind = Kernel_plan.Library;
    ops =
      [
        compiled_op ~scheme:Scheme.Independent
          ~placement:Kernel_plan.Device_mem ~mapping id;
      ];
    launch;
    barriers = 0;
    scratch_bytes = 0;
  }

let library_kernels arch g =
  let live = Graph.live_ids g in
  Graph.compute_intensive_ids g
  |> List.filter (fun id -> live.(id))
  |> List.map (library_kernel arch g)

(* Memcpy/memset accounting shared across backends:
   - one device-to-host copy per graph output;
   - one memset per kernel that initializes atomic accumulators
     (column reduces and split row-reduces);
   - backends add their own boundary copies (standalone reshapes etc.). *)
let output_memcpys g = List.length (Graph.outputs g)

let atomic_memsets kernels =
  List.fold_left
    (fun acc (k : Kernel_plan.kernel) ->
      acc
      + List.length
          (List.filter
             (fun (o : Kernel_plan.compiled_op) ->
               Thread_mapping.uses_atomics o.mapping)
             k.ops))
    0 kernels

let output_bytes g =
  List.fold_left (fun acc id -> acc + Graph.bytes g id) 0 (Graph.outputs g)
