(* Deterministic fault injection for the compilation pipeline AND the
   serving/execution runtime.

   Robustness testing needs to prove one invariant per layer.  Compile
   path: under any injected fault, compilation either degrades to a plan
   that still executes to interpreter-identical values or returns a
   structured [Compile_error] — it never crashes with a bare exception
   and never silently produces wrong numerics.  Runtime path: under any
   injected fault, every admitted serving request still resolves to a
   structured outcome (served, shed, or failed — never lost), and no
   corrupted value is ever delivered (a batch during which a fault fired
   is discarded and retried).

   To exercise that, the main passes and the hot execution points carry
   named injection sites; arming a site makes it raise a structured
   error, deterministically corrupt the site's result (seeded, so
   failures replay), or stall (a seeded sleep — the wedged-worker
   simulation supervision must detect).

   A fault carries [fuel]: the number of site hits it fires on before
   exhausting.  One unit of fuel fails the first compile attempt and lets
   the per-cluster retry succeed; more fuel pushes the degradation ladder
   further down.  The terminal fallbacks deliberately avoid every
   instrumented site — kernel-per-op compilation for the compile ladder,
   [Executor.run] solo execution for the serving ladder — so both
   ladders always terminate.

   The registry is shared by compile domains and serving worker domains,
   so fuel and the firing counters are atomics: a fault with fuel [n]
   fires at most [n] times no matter how many domains race on it. *)

type site =
  (* compile pipeline *)
  | Clustering (* stitch-scope identification *)
  | Dominant_merging (* dominant identification + op grouping *)
  | Mem_planning (* shared-memory budget + scratch arena *)
  | Launch_config (* resource-aware launch configuration *)
  | Codegen (* kernel finalization / emission *)
  (* serving runtime *)
  | Kernel_exec (* per-kernel execution in a pooled context *)
  | Staged_restage (* shared-memory slab staging (Regional scheme) *)
  | Pack (* request concat/pad into a batch *)
  | Unpack (* output slicing back to requests *)
  | Worker_loop (* the worker domain's dispatch loop itself *)

(* [all_sites] keeps its historical meaning — the compile-pipeline
   sites — because the resilience sweeps index into it positionally.
   Runtime sweeps use [runtime_sites]; [every_site] is the union. *)
let all_sites =
  [ Clustering; Dominant_merging; Mem_planning; Launch_config; Codegen ]

let runtime_sites = [ Kernel_exec; Staged_restage; Pack; Unpack; Worker_loop ]
let every_site = all_sites @ runtime_sites

let is_runtime_site = function
  | Kernel_exec | Staged_restage | Pack | Unpack | Worker_loop -> true
  | Clustering | Dominant_merging | Mem_planning | Launch_config | Codegen ->
      false

let site_to_string = function
  | Clustering -> "clustering"
  | Dominant_merging -> "dominant-merging"
  | Mem_planning -> "mem-planning"
  | Launch_config -> "launch-config"
  | Codegen -> "codegen"
  | Kernel_exec -> "kernel-exec"
  | Staged_restage -> "staged-restage"
  | Pack -> "pack"
  | Unpack -> "unpack"
  | Worker_loop -> "worker-loop"

let site_of_string s =
  match String.lowercase_ascii s with
  | "clustering" -> Some Clustering
  | "dominant-merging" | "dominant" -> Some Dominant_merging
  | "mem-planning" | "mem" -> Some Mem_planning
  | "launch-config" | "launch" -> Some Launch_config
  | "codegen" -> Some Codegen
  | "kernel-exec" | "exec" -> Some Kernel_exec
  | "staged-restage" | "restage" -> Some Staged_restage
  | "pack" -> Some Pack
  | "unpack" -> Some Unpack
  | "worker-loop" | "worker" -> Some Worker_loop
  | _ -> None

type mode = Raise | Corrupt | Stall

let mode_to_string = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Stall -> "stall"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "raise" -> Some Raise
  | "corrupt" -> Some Corrupt
  | "stall" -> Some Stall
  | _ -> None

type plan = { site : site; mode : mode; seed : int; fuel : int }

let plan ?(mode = Raise) ?(seed = 0) ?(fuel = 1) site =
  { site; mode; seed; fuel }

exception Runtime_fault of { site : site; seed : int; pass : string }

let () =
  Printexc.register_printer (function
    | Runtime_fault { site; seed; pass } ->
        Some
          (Printf.sprintf "injected runtime fault at site %s during %s (seed %d)"
             (site_to_string site) pass seed)
    | _ -> None)

(* A stall sleeps a seeded 1-10ms: long enough to trip a test-scale
   wedge timeout deterministically, short enough to keep sweeps fast. *)
let stall_s seed = 0.001 *. (1. +. float_of_int (abs seed mod 10))

(* Armed faults (remaining fuel tracked per plan), firing counters, and
   a monotonic arming epoch.  The epoch lets observers (the plan cache)
   detect that faults were armed at any point during a compile even
   though [arm] resets the firing counters and the compile disarms on
   the way out.  [compile_fired] counts only compile-site firings, so a
   serving process with runtime faults armed still caches full-strength
   compiles (runtime sites cannot perturb a plan). *)
let armed : (plan * int Atomic.t) list ref = ref []
let fired_count = Atomic.make 0
let compile_fired_count = Atomic.make 0
let arm_epoch = ref 0

let arm plans =
  armed := List.map (fun p -> (p, Atomic.make p.fuel)) plans;
  incr arm_epoch;
  Atomic.set fired_count 0;
  Atomic.set compile_fired_count 0

let disarm () = armed := []
let fired () = Atomic.get fired_count
let compile_fired () = Atomic.get compile_fired_count
let active () = !armed <> []
let epoch () = !arm_epoch

let site_active pred () =
  List.exists
    (fun ((p : plan), fuel) -> pred p.site && Atomic.get fuel > 0)
    !armed

let compile_active = site_active (fun s -> not (is_runtime_site s))
let runtime_active = site_active is_runtime_site

(* Claim one unit of fuel; the compare-and-set loop makes "fires at most
   [fuel] times" hold under concurrent domains. *)
let rec take_fuel fuel =
  let v = Atomic.get fuel in
  if v <= 0 then false
  else if Atomic.compare_and_set fuel v (v - 1) then true
  else take_fuel fuel

let rec first_armed site = function
  | [] -> None
  | ((p : plan), fuel) :: rest ->
      if p.site = site && take_fuel fuel then Some p else first_armed site rest

let record_fired ~compile site (p : plan) pass =
  Atomic.incr fired_count;
  if compile then Atomic.incr compile_fired_count;
  Astitch_obs.Metrics.(inc (counter default "fault.fired"));
  if Astitch_obs.Trace.enabled () then
    Astitch_obs.Trace.instant ~phase:"fault" "fault-fired"
      ~attrs:
        [
          ("site", Astitch_obs.Trace.Str (site_to_string site));
          ("mode", Astitch_obs.Trace.Str (mode_to_string p.mode));
          ("pass", Astitch_obs.Trace.Str pass);
          ("seed", Astitch_obs.Trace.Int p.seed);
        ]

(* Consult the registry at a compile-pass instrumentation point.
   Returns [Some seed] when an armed [Corrupt] fault fires (the pass
   then perturbs its result deterministically from the seed); raises a
   structured error when an armed [Raise] fault fires; sleeps and
   returns [None] for [Stall]; returns [None] otherwise. *)
let check site ~pass =
  match first_armed site !armed with
  | None -> None
  | Some p -> (
      record_fired ~compile:true site p pass;
      match p.mode with
      | Corrupt -> Some p.seed
      | Stall ->
          Unix.sleepf (stall_s p.seed);
          None
      | Raise ->
          Compile_error.fail ~pass Compile_error.Injected_fault
            "injected fault at site %s (seed %d)" (site_to_string site)
            p.seed)

(* The runtime counterpart: same firing discipline, but [Raise] throws
   [Runtime_fault] (a runtime exception the serving supervision catches)
   instead of a [Compile_error], so compile-path error taxonomy stays
   honest about where a failure came from. *)
let check_runtime site ~pass =
  match first_armed site !armed with
  | None -> None
  | Some p -> (
      record_fired ~compile:false site p pass;
      match p.mode with
      | Corrupt -> Some p.seed
      | Stall ->
          Unix.sleepf (stall_s p.seed);
          None
      | Raise -> raise (Runtime_fault { site; seed = p.seed; pass }))
