(* Deterministic fault injection for the compilation pipeline.

   Robustness testing needs to prove one invariant: under any injected
   fault, compilation either degrades to a plan that still executes to
   interpreter-identical values or returns a structured [Compile_error] —
   it never crashes with a bare exception and never silently produces
   wrong numerics.  To exercise that, the main passes carry named
   injection sites; arming a site makes it either raise a structured
   [Injected_fault] or deterministically corrupt the pass's result
   (seeded, so failures replay).

   A fault carries [fuel]: the number of site hits it fires on before
   exhausting.  One unit of fuel fails the first compile attempt and lets
   the per-cluster retry succeed; more fuel pushes the degradation ladder
   further down.  The terminal kernel-per-op fallback deliberately avoids
   every instrumented pass, so the ladder always terminates. *)

type site =
  | Clustering (* stitch-scope identification *)
  | Dominant_merging (* dominant identification + op grouping *)
  | Mem_planning (* shared-memory budget + scratch arena *)
  | Launch_config (* resource-aware launch configuration *)
  | Codegen (* kernel finalization / emission *)

let all_sites =
  [ Clustering; Dominant_merging; Mem_planning; Launch_config; Codegen ]

let site_to_string = function
  | Clustering -> "clustering"
  | Dominant_merging -> "dominant-merging"
  | Mem_planning -> "mem-planning"
  | Launch_config -> "launch-config"
  | Codegen -> "codegen"

let site_of_string s =
  match String.lowercase_ascii s with
  | "clustering" -> Some Clustering
  | "dominant-merging" | "dominant" -> Some Dominant_merging
  | "mem-planning" | "mem" -> Some Mem_planning
  | "launch-config" | "launch" -> Some Launch_config
  | "codegen" -> Some Codegen
  | _ -> None

type mode = Raise | Corrupt

let mode_to_string = function Raise -> "raise" | Corrupt -> "corrupt"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "raise" -> Some Raise
  | "corrupt" -> Some Corrupt
  | _ -> None

type plan = { site : site; mode : mode; seed : int; fuel : int }

let plan ?(mode = Raise) ?(seed = 0) ?(fuel = 1) site =
  { site; mode; seed; fuel }

(* Armed faults (remaining fuel tracked per plan), a firing counter, and
   a monotonic arming epoch.  The epoch lets observers (the plan cache)
   detect that faults were armed at any point during a compile even
   though [arm] resets the firing counter and the compile disarms on the
   way out. *)
let armed : (plan * int ref) list ref = ref []
let fired_count = ref 0
let arm_epoch = ref 0

let arm plans =
  armed := List.map (fun p -> (p, ref p.fuel)) plans;
  incr arm_epoch;
  fired_count := 0

let disarm () = armed := []
let fired () = !fired_count
let active () = !armed <> []
let epoch () = !arm_epoch

(* Consult the registry at an instrumentation point.  Returns [Some seed]
   when an armed [Corrupt] fault fires (the pass then perturbs its result
   deterministically from the seed); raises a structured error when an
   armed [Raise] fault fires; returns [None] otherwise. *)
let check site ~pass =
  match
    List.find_opt
      (fun ((p : plan), fuel) -> p.site = site && !fuel > 0)
      !armed
  with
  | None -> None
  | Some (p, fuel) -> (
      decr fuel;
      incr fired_count;
      Astitch_obs.Metrics.(inc (counter default "fault.fired"));
      if Astitch_obs.Trace.enabled () then
        Astitch_obs.Trace.instant ~phase:"fault" "fault-fired"
          ~attrs:
            [
              ("site", Astitch_obs.Trace.Str (site_to_string site));
              ("mode", Astitch_obs.Trace.Str (mode_to_string p.mode));
              ("pass", Astitch_obs.Trace.Str pass);
              ("seed", Astitch_obs.Trace.Int p.seed);
            ];
      match p.mode with
      | Corrupt -> Some p.seed
      | Raise ->
          Compile_error.fail ~pass Compile_error.Injected_fault
            "injected fault at site %s (seed %d)" (site_to_string site)
            p.seed)
