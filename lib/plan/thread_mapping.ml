(* Thread mappings: how an operator's output elements map onto the
   (grid, block) geometry.

   The adaptive dimensions follow paper Sec 3.3:
   - horizontal packing: several reduction rows share one thread block
     ([rows_per_block] > 1), fixing the small-block-size pathology;
   - vertical packing: one block processes several row groups
     sequentially ([row_groups_per_block] > 1), capping the block count
     below the per-wave limit required by global barriers;
   - task splitting: one row is reduced by several blocks with cross-block
     atomics ([split] > 1), fixing the small-block-count pathology. *)

type t =
  | Elementwise of {
      elements : int;
      block : int;
      grid : int;
      rows : int option;
          (* row geometry when the schedule was propagated from (or aligned
             with) a reduce group; used for block-locality checks *)
    }
  | Row_reduce of {
      rows : int;
      row_length : int;
      threads_per_row : int;
      rows_per_block : int;
      row_groups_per_block : int;
      split : int;
    }
  | Column_reduce of { rows : int; row_length : int; block : int; grid : int }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let block = function
  | Elementwise { block; _ } -> block
  | Row_reduce { threads_per_row; rows_per_block; _ } ->
      threads_per_row * rows_per_block
  | Column_reduce { block; _ } -> block

let grid = function
  | Elementwise { grid; _ } -> grid
  | Row_reduce { rows; rows_per_block; row_groups_per_block; split; _ } ->
      if split > 1 then rows * split
      else
        let rows_per_grid_block = rows_per_block * row_groups_per_block in
        (rows + rows_per_grid_block - 1) / rows_per_grid_block
  | Column_reduce { grid; _ } -> grid

let uses_atomics = function
  | Row_reduce { split; _ } -> split > 1
  | Column_reduce _ -> true
  | Elementwise _ -> false

let validate ?(max_block = 1024) t =
  (match t with
  | Elementwise { elements; block; grid; _ } ->
      if elements < 1 then invalid "elementwise: no elements";
      if block < 1 || grid < 1 then invalid "elementwise: empty launch"
  | Row_reduce
      { rows; row_length; threads_per_row; rows_per_block;
        row_groups_per_block; split } ->
      if rows < 1 || row_length < 1 then invalid "row-reduce: empty geometry";
      if threads_per_row < 1 || rows_per_block < 1 then
        invalid "row-reduce: empty block geometry";
      if row_groups_per_block < 1 then invalid "row-reduce: empty group";
      if split < 1 then invalid "row-reduce: split < 1";
      if split > 1 && (rows_per_block > 1 || row_groups_per_block > 1) then
        invalid "row-reduce: cannot combine splitting with packing"
  | Column_reduce { rows; row_length; block; grid } ->
      if rows < 1 || row_length < 1 then invalid "column-reduce: empty";
      if block < 1 || grid < 1 then invalid "column-reduce: empty launch");
  if block t > max_block then
    invalid "block size %d exceeds limit %d" (block t) max_block

(* Output elements produced by each grid block, when they form a
   contiguous range (required for block locality); None when the blocks'
   outputs interleave (split reduces, column reduces). *)
let contiguous_outputs_per_block = function
  | Elementwise { elements; grid; _ } -> Some ((elements + grid - 1) / grid)
  | Row_reduce { rows_per_block; row_groups_per_block; split; _ } ->
      if split > 1 then None else Some (rows_per_block * row_groups_per_block)
  | Column_reduce _ -> None

(* The row partition [(rows, rows_per_grid_block)] induced on a logical
   row space, used to align producer and consumer groups for regional
   (shared-memory) stitching.  Uses the effective ceil(rows/grid) so that
   producer and consumer agree whenever they share grid and row count. *)
let row_partition t =
  match t with
  | Elementwise { rows = Some rows; _ } ->
      Some (rows, (rows + grid t - 1) / grid t)
  | Elementwise { rows = None; _ } -> None
  | Row_reduce { rows; split; _ } ->
      if split > 1 then None else Some (rows, (rows + grid t - 1) / grid t)
  | Column_reduce _ -> None

(* Two mappings are block-aligned when they partition the same row space
   identically with the same grid: block i of the consumer then reads
   exactly what block i of the producer wrote. *)
let block_aligned a b =
  grid a = grid b
  &&
  match (row_partition a, row_partition b) with
  | Some (ra, pa), Some (rb, pb) -> ra = rb && pa = pb
  | _ -> false

(* Re-pack a mapping compiled at one extent for a smaller one: the
   symbolic-batch rebind.  [num]/[den] is the batch ratio (b / max), and
   every extent that scales with the batch is multiplied by it exactly
   (scaled element and row counts are multiples of [den] by
   construction, so the ceiling division is exact).  Block geometry —
   threads per row, packing factors, split — is kept: the compiled
   kernel body depends on it, only the amount of work per launch
   shrinks.  Grids that were derived from the extent shrink with it
   (never grow: [num <= den]). *)
let rebind t ~num ~den =
  let sc x = Stdlib.max 1 (((x * num) + den - 1) / den) in
  let t' =
    match t with
    | Elementwise { elements; block; grid; rows } ->
        let elements = sc elements in
        let grid = Stdlib.min grid ((elements + block - 1) / block) in
        Elementwise { elements; block; grid; rows = Option.map sc rows }
    | Row_reduce r -> Row_reduce { r with rows = sc r.rows }
    | Column_reduce { rows; row_length; block; grid } ->
        (* [rows] is the number of independent reductions (= output
           elements), which is what scales with the batch; the reduced
           extent [row_length] is batch-invariant for any node the
           batch analysis accepts. *)
        let rows = sc rows in
        let grid =
          Stdlib.max 1
            (Stdlib.min grid (((rows * row_length) + block - 1) / block))
        in
        Column_reduce { rows; row_length; block; grid }
  in
  validate t';
  t'

let to_string = function
  | Elementwise { elements; block; grid; rows } ->
      Printf.sprintf "elementwise{n=%d, <<<%d,%d>>>%s}" elements grid block
        (match rows with Some r -> Printf.sprintf ", rows=%d" r | None -> "")
  | Row_reduce
      { rows; row_length; threads_per_row; rows_per_block;
        row_groups_per_block; split } ->
      Printf.sprintf
        "row-reduce{%dx%d, tpr=%d, pack_h=%d, pack_v=%d, split=%d}" rows
        row_length threads_per_row rows_per_block row_groups_per_block split
  | Column_reduce { rows; row_length; block; grid } ->
      Printf.sprintf "col-reduce{%dx%d, <<<%d,%d>>>}" rows row_length grid
        block

let pp fmt t = Format.pp_print_string fmt (to_string t)
