(* Kernel -> tape lowering for the fused execution engine.

   The planner records, per op, where its value lives (Table 1's four
   stitching schemes mapped to placements); this module turns each kernel
   into the structural recipe the runtime executor compiles into closures:

   - Register ops become [Inline] - recomputed per consumer read, zero
     materialization (the paper's Local scheme);
   - Shared_mem ops become [Staged] - kept in a per-block slab sized from
     the thread mapping's contiguous block geometry (Regional scheme);
   - Global_scratch ops become [Staged_global] - written to a per-kernel
     global-memory scratch slot whose availability is sequenced by
     in-kernel global barriers (Global scheme); Shared_mem ops that
     cannot be staged regionally demote to this role when the kernel's
     launch can legally hold the barrier;
   - Device_mem ops become [Materialize] - the only values that touch
     full plan-wide buffers, drawn from the liveness arena - or [Alias]
     when a reshape can view existing full storage.

   Lowering is purely structural (no tensor values): it classifies roles,
   validates that every read is of an available value under the plan's
   own ordering (mirroring the availability invariant the reference
   executor enforces dynamically), computes plan-wide liveness intervals
   - in kernel positions - for every buffer the fused engine must
   allocate, and sequences each kernel's global-scratch writes and reads
   into barrier-separated segments (a read of a scratch value staged
   since the last barrier point inserts a barrier before the reading
   producer; [Barrier.is_legal] bounds the grid, so an over-wide kernel
   rejects instead of deadlocking).  Kernels that use an unsupported
   pattern lower to [Fallback] with a reason; the executor runs those
   through the reference per-node path, so a bad plan still fails exactly
   where the reference executor would fail. *)

open Astitch_ir
open Astitch_simt

type role =
  | Inline (* Register: recomputed inside consumer loops *)
  | Staged of { block_elems : int } (* Shared_mem: per-block slab *)
  | Staged_global of { elems : int; demoted : bool }
      (* Global_scratch: per-kernel scratch slot behind a barrier *)
  | Materialize (* full buffer from the arena *)
  | Alias of { root : Op.node_id } (* reshape view of full storage *)

type kernel_tape = {
  kernel : Kernel_plan.kernel;
  pos : int; (* kernel position in plan order *)
  roles : (Op.node_id * role) list; (* op order, first occurrence only *)
  materialized : Op.node_id list; (* ids set computed when the kernel ran *)
  purged : Op.node_id list; (* on-chip ids unavailable after the kernel *)
  barriers : int; (* global barrier points executed per run *)
  barrier_before : Op.node_id list; (* producers preceded by a barrier *)
  gslots : (Op.node_id * int * int * int) list;
      (* staged-global slots: id, elems, def / last-read action index *)
  demotions : (Op.node_id * string) list; (* regional -> global demotions *)
}

type lowered =
  | Fused of kernel_tape
  | Fallback of { kernel : Kernel_plan.kernel; pos : int; reason : string }

type interval = {
  node : Op.node_id;
  elems : int;
  def_pos : int;
  last_pos : int; (* [num_positions] when the buffer backs an output *)
}

type t = {
  plan : Kernel_plan.t;
  kernels : lowered list; (* plan order *)
  intervals : interval list; (* fused-materialized buffers only *)
  num_positions : int; (* kernel count; the output-read position *)
}

(* Keep in sync with [Scalar_eval.scalarizable] (lib/tensor): ops whose
   output element is a pure function of operand elements.  Scatter_add's
   writes are input-driven and Parameter is external storage. *)
let scalarizable : Op.t -> bool = function
  | Op.Parameter _ | Op.Scatter_add _ -> false
  | _ -> true

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let lower (plan : Kernel_plan.t) : t =
  let g = plan.graph in
  let n = Graph.num_nodes g in
  let num_positions = List.length plan.kernels in
  (* full-storage availability across kernels, mirroring the reference
     executor's computed flags: leaves up front, Device_mem results after
     their kernel, on-chip results never (purged at the kernel boundary) *)
  let avail = Array.init n (fun id -> Kernel_plan.is_leaf g id) in
  (* def table for fused-materialized buffers *)
  let def = Array.make n None in
  let lower_kernel pos (k : Kernel_plan.kernel) =
    let seen : (Op.node_id, role) Hashtbl.t = Hashtbl.create 16 in
    (* a read is direct when it can see full storage: a leaf, an earlier
       kernel's device result, or full storage defined earlier in this
       kernel *)
    let direct id =
      match Hashtbl.find_opt seen id with
      | Some (Materialize | Alias _) -> true
      | Some (Inline | Staged _ | Staged_global _) -> false
      | None -> avail.(id)
    in
    let demotions = ref [] in
    let roles = ref [] in
    List.iter
      (fun (o : Kernel_plan.compiled_op) ->
        if not (Hashtbl.mem seen o.id) then begin
          let nd = Graph.node g o.id in
          List.iter
            (fun p ->
              if not (Hashtbl.mem seen p || avail.(p)) then
                reject "op %d reads %d which is not available" o.id p)
            (Graph.operands g o.id);
          let role =
            match o.placement with
            | Kernel_plan.Register ->
                if scalarizable nd.op then Inline
                else reject "op %d (%s) cannot be scalarized" o.id
                    (Op.mnemonic nd.op)
            | Kernel_plan.Shared_mem -> (
                (* regional -> global demotion: a value that cannot live
                   in a per-block slab can still stitch through a global
                   scratch slot behind a barrier - provided the launch
                   keeps every block resident (otherwise the barrier
                   would deadlock, so the pattern stays a reject) *)
                let stage_globally why =
                  if Barrier.is_legal plan.arch k.launch then begin
                    demotions := (o.id, why) :: !demotions;
                    Staged_global
                      { elems = Graph.num_elements g o.id; demoted = true }
                  end
                  else
                    reject
                      "%s (global-staging demotion needs an illegal \
                       barrier: grid %d > %d co-resident blocks)"
                      why k.launch.Launch.grid
                      (Occupancy.blocks_per_wave plan.arch k.launch)
                in
                match nd.op with
                | Op.Parameter _ ->
                    reject "op %d: parameter inside a kernel" o.id
                | _ -> (
                    if not (scalarizable nd.op) then
                      stage_globally
                        (Printf.sprintf "op %d (%s) cannot be staged" o.id
                           (Op.mnemonic nd.op))
                    else
                      match
                        Thread_mapping.contiguous_outputs_per_block o.mapping
                      with
                      | None ->
                          stage_globally
                            (Printf.sprintf
                               "op %d: no contiguous block geometry to stage"
                               o.id)
                      | Some c ->
                          let total = Graph.num_elements g o.id in
                          Staged
                            { block_elems = Stdlib.max 1 (Stdlib.min c total) }
                    ))
            | Kernel_plan.Global_scratch -> (
                match nd.op with
                | Op.Parameter _ ->
                    reject "op %d: parameter inside a kernel" o.id
                | Op.Reshape { input } when direct input ->
                    Alias { root = input }
                | _ ->
                    Staged_global
                      { elems = Graph.num_elements g o.id; demoted = false })
            | Kernel_plan.Device_mem -> (
                match nd.op with
                | Op.Parameter _ ->
                    reject "op %d: parameter inside a kernel" o.id
                | Op.Reshape { input } when direct input ->
                    Alias { root = input }
                | _ ->
                    if def.(o.id) <> None then
                      reject "op %d rematerialized by a later kernel" o.id;
                    Materialize)
          in
          Hashtbl.replace seen o.id role;
          roles := (o.id, role) :: !roles
        end)
      k.ops;
    let roles = List.rev !roles in
    let role_of id = Hashtbl.find_opt seen id in
    (* ---- barrier sequencing ----
       Barrier-protected producers are the values crossing blocks through
       global memory inside this kernel: every [Staged_global] slot, plus
       Device_mem results the planner marked [Scheme.Global] (their
       in-kernel consumers read them through global memory too). *)
    let source = Hashtbl.create 8 in
    List.iter
      (fun (o : Kernel_plan.compiled_op) ->
        match role_of o.id with
        | Some (Staged_global _) -> Hashtbl.replace source o.id ()
        | Some Materialize when o.scheme = Scheme.Global ->
            Hashtbl.replace source o.id ()
        | _ -> ())
      k.ops;
    let rec root_of id =
      match role_of id with Some (Alias { root }) -> root_of root | _ -> id
    in
    (* scratch_deps id: barrier-protected producers read when one element
       of [id] is evaluated - through scalarized/slab-staged chains, which
       re-read their own operands lazily at the consumer's position *)
    let deps_memo : (Op.node_id, Op.node_id list) Hashtbl.t =
      Hashtbl.create 16
    in
    let rec scratch_deps id =
      match Hashtbl.find_opt deps_memo id with
      | Some d -> d
      | None ->
          let d =
            List.fold_left
              (fun acc p ->
                let p = root_of p in
                if Hashtbl.mem source p then p :: acc
                else
                  match role_of p with
                  | Some (Inline | Staged _) ->
                      List.rev_append (scratch_deps p) acc
                  | _ -> acc)
              [] (Graph.operands g id)
          in
          Hashtbl.replace deps_memo id d;
          d
    in
    (* Walk the producers that run as actions (everything but lazy
       Inline/Staged values) in execution order.  Reading a protected
       value written since the last barrier point opens a new segment:
       one global barrier before the reading producer. *)
    let pending = Hashtbl.create 8 in
    let barriers = ref 0 in
    let barrier_before = ref [] in
    let action_index = Hashtbl.create 16 in
    let last_read = Hashtbl.create 16 in
    let next_idx = ref 0 in
    List.iter
      (fun (id, role) ->
        match role with
        | Inline | Staged _ -> ()
        | Staged_global _ | Materialize | Alias _ ->
            let i = !next_idx in
            incr next_idx;
            Hashtbl.replace action_index id i;
            let ds = scratch_deps id in
            List.iter (fun d -> Hashtbl.replace last_read d i) ds;
            if List.exists (Hashtbl.mem pending) ds then begin
              incr barriers;
              barrier_before := id :: !barrier_before;
              Hashtbl.reset pending
            end;
            if Hashtbl.mem source id then Hashtbl.replace pending id ())
      roles;
    if !barriers > 0 && not (Barrier.is_legal plan.arch k.launch) then
      reject
        "kernel %s: %d global barrier(s) but grid %d > %d co-resident \
         blocks - must split"
        k.name !barriers k.launch.Launch.grid
        (Occupancy.blocks_per_wave plan.arch k.launch);
    (* per-kernel scratch-slot intervals, in action indices: a slot is
       live from its staging loop to the last action whose evaluation
       reads it (lazy reads charge to the reading action) *)
    let gslots =
      List.filter_map
        (fun (id, role) ->
          match role with
          | Staged_global { elems; _ } ->
              let d = Hashtbl.find action_index id in
              let l =
                Stdlib.max d
                  (Option.value ~default:d (Hashtbl.find_opt last_read id))
              in
              Some (id, elems, d, l)
          | _ -> None)
        roles
    in
    let materialized =
      List.filter_map
        (fun (id, r) ->
          match r with Materialize | Alias _ -> Some id | _ -> None)
        roles
    in
    let purged =
      List.filter_map
        (fun (o : Kernel_plan.compiled_op) ->
          match o.placement with
          | Kernel_plan.Device_mem -> None
          | Kernel_plan.Register | Kernel_plan.Shared_mem
          | Kernel_plan.Global_scratch ->
              Some o.id)
        k.ops
    in
    {
      kernel = k;
      pos;
      roles;
      materialized;
      purged;
      barriers = !barriers;
      barrier_before = List.rev !barrier_before;
      gslots;
      demotions = List.rev !demotions;
    }
  in
  let kernels =
    List.mapi
      (fun pos (k : Kernel_plan.kernel) ->
        let lowered =
          match lower_kernel pos k with
          | tape -> Fused tape
          | exception Reject reason -> Fallback { kernel = k; pos; reason }
        in
        (* availability and def-table updates are identical either way:
           the reference path enforces the same visibility dynamically *)
        List.iter
          (fun (o : Kernel_plan.compiled_op) ->
            match o.placement with
            | Kernel_plan.Device_mem -> avail.(o.id) <- true
            | Kernel_plan.Register | Kernel_plan.Shared_mem
            | Kernel_plan.Global_scratch ->
                avail.(o.id) <- false)
          k.ops;
        (match lowered with
        | Fused tape ->
            List.iter
              (fun (id, r) ->
                match r with
                | Materialize ->
                    def.(id) <- Some (pos, Graph.num_elements g id)
                | _ -> ())
              tape.roles
        | Fallback _ -> ());
        lowered)
      plan.kernels
  in
  (* plan-wide storage roots: follow reshape edges down to the first node
     that owns its own buffer (has a def entry) or is not a reshape;
     reads and outputs then pin the owning buffer, so a view can never
     outlive the storage it aliases *)
  let rec storage_root id =
    if def.(id) <> None then id
    else
      match (Graph.node g id).op with
      | Op.Reshape { input } -> storage_root input
      | _ -> id
  in
  let last = Array.make n (-1) in
  List.iteri
    (fun pos (k : Kernel_plan.kernel) ->
      List.iter
        (fun (o : Kernel_plan.compiled_op) ->
          List.iter
            (fun p ->
              let r = storage_root p in
              if last.(r) < pos then last.(r) <- pos)
            (Graph.operands g o.id))
        k.ops)
    plan.kernels;
  List.iter
    (fun id -> last.(storage_root id) <- num_positions)
    (Graph.outputs g);
  let intervals =
    List.concat_map
      (function
        | Fallback _ -> []
        | Fused tape ->
            List.filter_map
              (fun (id, r) ->
                match (r, def.(id)) with
                | Materialize, Some (def_pos, elems) ->
                    Some
                      {
                        node = id;
                        elems;
                        def_pos;
                        last_pos = Stdlib.max def_pos last.(id);
                      }
                | _ -> None)
              tape.roles)
      kernels
  in
  { plan; kernels; intervals; num_positions }
