(* Stitching-scope identification (paper Sec 4.1).

   Memory-intensive subgraphs are the connected components of the graph
   restricted to memory-intensive non-leaf nodes *at the same compute
   depth*, where the compute depth of a node counts the compute-intensive
   ops on its longest path from the inputs.  Splitting by depth guarantees
   cycle-freedom: any path re-entering a cluster from outside must pass a
   compute-intensive op and therefore land at a strictly larger depth.

   Remote stitching then merges mutually-unreachable clusters so several
   disconnected subgraphs share one kernel launch. *)

open Astitch_ir

type cluster = {
  id : int;
  nodes : Op.node_id list; (* ascending = topological *)
}

let is_clusterable g id =
  (not (Kernel_plan.is_leaf g id))
  && Op.classify (Graph.op g id) = Op.Memory_intensive

(* Longest-path count of compute-intensive ops from the graph inputs. *)
let compute_depths g =
  let n = Graph.num_nodes g in
  let depth = Array.make n 0 in
  for id = 0 to n - 1 do
    let d =
      List.fold_left
        (fun acc operand ->
          let bump =
            match Op.classify (Graph.op g operand) with
            | Op.Compute_intensive -> 1
            | Op.Memory_intensive -> 0
          in
          Stdlib.max acc (depth.(operand) + bump))
        0 (Graph.operands g id)
    in
    depth.(id) <- d
  done;
  depth

(* Union-find over node ids. *)
let find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  (* path compression *)
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(Stdlib.max ra rb) <- Stdlib.min ra rb

(* Fault injection (Corrupt): drop the last node of a multi-node cluster
   (seed picks which).  The dropped node is live, so no kernel produces it
   and the plan fails the availability / output invariants — detectable by
   [Kernel_plan.check], never silently wrong. *)
let corrupt_clusters seed cs =
  match List.filter (fun c -> List.length c.nodes > 1) cs with
  | [] -> cs
  | multi ->
      let victim = (List.nth multi (abs seed mod List.length multi)).id in
      List.map
        (fun c ->
          if c.id = victim then
            let keep = List.length c.nodes - 1 in
            { c with nodes = List.filteri (fun i _ -> i < keep) c.nodes }
          else c)
        cs

let clusters g =
  let n = Graph.num_nodes g in
  let depth = compute_depths g in
  let live = Graph.live_ids g in
  let is_clusterable g id = live.(id) && is_clusterable g id in
  let parent = Array.init n Fun.id in
  for id = 0 to n - 1 do
    if is_clusterable g id then
      List.iter
        (fun operand ->
          if is_clusterable g operand && depth.(operand) = depth.(id) then
            union parent operand id)
        (Graph.operands g id)
  done;
  let members = Hashtbl.create 64 in
  for id = n - 1 downto 0 do
    if is_clusterable g id then begin
      let r = find parent id in
      let existing = Option.value ~default:[] (Hashtbl.find_opt members r) in
      Hashtbl.replace members r (id :: existing)
    end
  done;
  let roots = Hashtbl.fold (fun r _ acc -> r :: acc) members [] in
  let cs =
    List.sort compare roots
    |> List.mapi (fun i r -> { id = i; nodes = Hashtbl.find members r })
  in
  match Fault_site.check Fault_site.Clustering ~pass:"clustering" with
  | None -> cs
  | Some seed -> corrupt_clusters seed cs

(* --- Remote stitching --------------------------------------------------- *)

(* Bitset over cluster ids. *)
module Bits = struct
  type t = Bytes.t

  let _ = (fun (x : t) -> x)

  let create n = Bytes.make ((n + 7) / 8) '\000'

  let set b i =
    let c = Char.code (Bytes.get b (i / 8)) in
    Bytes.set b (i / 8) (Char.chr (c lor (1 lsl (i mod 8))))

  let mem b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

  let union_into ~into src =
    for i = 0 to Bytes.length into - 1 do
      Bytes.set into i
        (Char.chr
           (Char.code (Bytes.get into i) lor Char.code (Bytes.get src i)))
    done

end

(* For each node, the set of clusters reachable strictly downstream. *)
let downstream_clusters g ~num_clusters ~cluster_of =
  let n = Graph.num_nodes g in
  let reach = Array.init n (fun _ -> Bits.create num_clusters) in
  for id = n - 1 downto 0 do
    List.iter
      (fun consumer ->
        Bits.union_into ~into:reach.(id) reach.(consumer);
        match cluster_of.(consumer) with
        | Some c -> Bits.set reach.(id) c
        | None -> ())
      (Graph.consumers g id)
  done;
  reach

(* Merge mutually-unreachable clusters, bounded by [max_merge_width]
   members per stitch op.

   Safety argument: clusters are levelled by longest path in the
   cluster-reachability DAG.  Two clusters at the same level cannot reach
   each other (reachability strictly increases the level), so merging
   within a level never builds a cyclic kernel; and because every
   cross-group dependency goes from a strictly lower level to a higher
   one, the *grouped* kernel graph stays acyclic as well — pairwise
   checks alone do not give that second property. *)
let remote_stitch_groups ?(max_merge_width = 4) g (cs : cluster list) =
  let num_clusters = List.length cs in
  if num_clusters <= 1 then List.map (fun c -> [ c ]) cs
  else begin
    let n = Graph.num_nodes g in
    let cluster_of = Array.make n None in
    List.iter
      (fun c -> List.iter (fun id -> cluster_of.(id) <- Some c.id) c.nodes)
      cs;
    let node_reach = downstream_clusters g ~num_clusters ~cluster_of in
    (* cluster-level reachability (downstream), as bitsets *)
    let creach = Array.init num_clusters (fun _ -> Bits.create num_clusters) in
    List.iter
      (fun c ->
        List.iter
          (fun id -> Bits.union_into ~into:creach.(c.id) node_reach.(id))
          c.nodes)
      cs;
    (* longest-path levels over the reachability DAG (Kahn) *)
    let level = Array.make num_clusters 0 in
    let indegree = Array.make num_clusters 0 in
    let reaches a b = a <> b && Bits.mem creach.(a) b in
    for a = 0 to num_clusters - 1 do
      for b = 0 to num_clusters - 1 do
        if reaches a b then indegree.(b) <- indegree.(b) + 1
      done
    done;
    let queue = Queue.create () in
    Array.iteri (fun c d -> if d = 0 then Queue.add c queue) indegree;
    let processed = ref 0 in
    while not (Queue.is_empty queue) do
      let a = Queue.pop queue in
      incr processed;
      for b = 0 to num_clusters - 1 do
        if reaches a b then begin
          if level.(b) < level.(a) + 1 then level.(b) <- level.(a) + 1;
          indegree.(b) <- indegree.(b) - 1;
          if indegree.(b) = 0 then Queue.add b queue
        end
      done
    done;
    assert (!processed = num_clusters);
    (* group clusters by level, chunking at the width cap *)
    let by_level = Hashtbl.create 16 in
    List.iter
      (fun c ->
        let l = level.(c.id) in
        Hashtbl.replace by_level l
          (c :: Option.value ~default:[] (Hashtbl.find_opt by_level l)))
      cs;
    let levels = Hashtbl.fold (fun l _ acc -> l :: acc) by_level [] in
    let groups =
      List.concat_map
        (fun l ->
          let members = List.rev (Hashtbl.find by_level l) in
          let rec chunk = function
            | [] -> []
            | rest ->
                let took = List.filteri (fun i _ -> i < max_merge_width) rest in
                let remaining =
                  List.filteri (fun i _ -> i >= max_merge_width) rest
                in
                took :: chunk remaining
          in
          chunk members)
        (List.sort compare levels)
    in
    groups
  end

let remote_stitch ?max_merge_width g cs =
  remote_stitch_groups ?max_merge_width g cs
  |> List.mapi (fun i group ->
         let nodes =
           List.concat_map (fun c -> c.nodes) group |> List.sort_uniq compare
         in
         { id = i; nodes })
