(** Versioned binary codec for {!Kernel_plan.t}: the persistence format
    behind the plan store.

    A kernel plan is pure data - graph nodes, compiled ops with their
    stitching schemes, placements (which drive the tape's storage roles)
    and thread mappings, launch configurations, and the optional
    batch-axis classification - so it serializes completely.  The codec
    is canonical and deterministic: [encode] of structurally identical
    plans yields identical bytes, which makes byte equality of encodings
    the plan bit-identity check the store's load gate relies on.

    Layout: a 4-byte magic, a version word, a length-prefixed payload
    and a trailing FNV-1a 64 checksum of the payload.  Decoding verifies
    magic, version, length and checksum before parsing, so a truncated
    or corrupted file surfaces as a structured {!error} - never as an
    escaping exception. *)

val version : int
(** Current codec version.  Bump on any layout change; the store keys
    saved plans by it, so old files are simply not loaded. *)

type error =
  | Bad_magic  (** not a plan file at all *)
  | Unsupported_version of int  (** encoded with a different codec *)
  | Truncated of { want : int; have : int }
      (** the file ends before [want] bytes are available *)
  | Checksum_mismatch  (** payload bytes were altered *)
  | Malformed of string
      (** structurally invalid payload: unknown tag, ill-formed graph,
          inconsistent geometry *)

val error_to_string : error -> string

exception Codec_error of error
(** Raised only by {!decode_exn}; {!decode} never raises. *)

val encode : Kernel_plan.t -> string
(** Canonical bytes for a plan.  Deterministic: structurally identical
    plans encode identically (the graph's memoized fingerprint is not
    part of the encoding). *)

val decode : string -> (Kernel_plan.t, error) result
(** Parse [encode]'s output.  Never raises: corruption, truncation and
    version skew all come back as structured errors.  The decoded
    graph is re-validated node by node ({!Astitch_ir.Graph.of_nodes}),
    so a plan that decodes successfully is structurally well-formed. *)

val decode_exn : string -> Kernel_plan.t
(** @raise Codec_error on any decode failure. *)

val equal : Kernel_plan.t -> Kernel_plan.t -> bool
(** Structural plan equality via canonical encoding: true iff
    [encode a = encode b].  This is the bit-identity gate used when a
    deserialized plan is checked against a fresh compile. *)
