(** Dense row-major tensors of OCaml floats.

    All dtypes share the float representation: predicates are 0./1.,
    integers are whole floats.  The reference interpreter's results on
    these tensors are the ground truth every compiled plan must match. *)

open Astitch_ir

type t

exception Mismatch of string

val mismatch : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Mismatch} with a formatted message. *)

val create : Shape.t -> float array -> t
val shape : t -> Shape.t
val data : t -> float array
val num_elements : t -> int
val full : Shape.t -> float -> t
val zeros : Shape.t -> t
val ones : Shape.t -> t
val scalar : float -> t
val init : Shape.t -> (int -> float) -> t
val of_list : int list -> float list -> t
val get : t -> int array -> float
val get_linear : t -> int -> float
val set_linear : t -> int -> float -> unit
val copy : t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val map_into : (float -> float) -> t -> dst:t -> t
(** [map] writing into a preallocated destination (returned); elements are
    written in ascending linear order, bit-identical to {!map}. *)

val map2_into : (float -> float -> float) -> t -> t -> dst:t -> t
(** [map2] writing into a preallocated destination (returned). *)

val reshape : t -> Shape.t -> t
val equal_approx : ?eps:float -> t -> t -> bool
val max_abs_diff : t -> t -> float
val pp : Format.formatter -> t -> unit

val random : seed:int -> Shape.t -> t
(** Deterministic pseudo-random fill in [[-1, 1]]; no global state. *)
