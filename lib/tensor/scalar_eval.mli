(** Per-element ("register") evaluation of graph ops for the fused
    execution engine: one node becomes an accessor over its output linear
    index, computed from operand accessors with exactly the float
    operations - in exactly the order - of the matching
    {!Interp.eval_node_into} case, so loops over these accessors are
    bit-identical to materializing evaluation. *)

open Astitch_ir

exception Unsupported of string

val scalarizable : Op.t -> bool
(** Ops whose output element is a pure function of operand elements.
    [Scatter_add] (input-driven writes) and [Parameter] (external
    storage) are not. *)

val compile :
  Graph.t ->
  Graph.node ->
  operand:(Op.node_id -> int -> float) ->
  int ->
  float
(** [compile g nd ~operand] is [nd]'s element accessor; [operand id i]
    must return element [i] of operand [id].  The returned closure owns
    scratch state and is not reentrant, but operand accessors of distinct
    nodes never recurse into each other (the graph is a DAG), so nesting
    is safe.
    @raise Unsupported when [not (scalarizable nd.op)]. *)
