(* Dense row-major tensors of OCaml floats.

   All dtypes are represented as floats: predicates as 0. / 1., integers as
   whole floats.  Numerics here are ground truth; the simulated kernels
   must reproduce them bit-for-bit (same evaluation order per element). *)

open Astitch_ir

type t = { shape : Shape.t; data : float array }

exception Mismatch of string

let mismatch fmt = Format.kasprintf (fun s -> raise (Mismatch s)) fmt

let create shape data =
  if Array.length data <> Shape.num_elements shape then
    mismatch "data length %d does not match shape %s" (Array.length data)
      (Shape.to_string shape);
  { shape; data }

let shape t = t.shape
let data t = t.data
let num_elements t = Array.length t.data

let full shape v = { shape; data = Array.make (Shape.num_elements shape) v }
let zeros shape = full shape 0.
let ones shape = full shape 1.
let scalar v = { shape = Shape.scalar; data = [| v |] }

let init shape f =
  { shape; data = Array.init (Shape.num_elements shape) f }

let of_list dims values =
  create (Shape.of_list dims) (Array.of_list values)

let get t idx = t.data.(Shape.linear_index t.shape idx)
let get_linear t i = t.data.(i)
let set_linear t i v = t.data.(i) <- v

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    mismatch "map2: shapes %s vs %s" (Shape.to_string a.shape)
      (Shape.to_string b.shape);
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let reshape t shape =
  if Shape.num_elements shape <> num_elements t then
    mismatch "reshape: element count mismatch";
  { t with shape }

let equal_approx ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  && Array.for_all2
       (fun x y ->
         x = y (* covers equal infinities *)
         || (Float.is_nan x && Float.is_nan y)
         ||
         let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
         Float.abs (x -. y) <= eps *. scale)
       a.data b.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let worst = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. b.data.(i)) in
        if d > !worst then worst := d)
      a.data;
    !worst
  end

let pp fmt t =
  Format.fprintf fmt "%s[" (Shape.to_string t.shape);
  let n = Stdlib.min 8 (Array.length t.data) in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if Array.length t.data > n then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"

(* Deterministic pseudo-random fill for tests/workloads (no global state). *)
let random ~seed shape =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. float_of_int 0x3FFFFFFF *. 2.) -. 1.
  in
  init shape (fun _ -> next ())
