(* Dense row-major tensors of OCaml floats.

   All dtypes are represented as floats: predicates as 0. / 1., integers as
   whole floats.  Numerics here are ground truth; the simulated kernels
   must reproduce them bit-for-bit (same evaluation order per element). *)

open Astitch_ir

type t = { shape : Shape.t; data : float array }

exception Mismatch of string

let mismatch fmt = Format.kasprintf (fun s -> raise (Mismatch s)) fmt

let create shape data =
  if Array.length data <> Shape.num_elements shape then
    mismatch "data length %d does not match shape %s" (Array.length data)
      (Shape.to_string shape);
  { shape; data }

let shape t = t.shape
let data t = t.data
let num_elements t = Array.length t.data

let full shape v = { shape; data = Array.make (Shape.num_elements shape) v }
let zeros shape = full shape 0.
let ones shape = full shape 1.
let scalar v = { shape = Shape.scalar; data = [| v |] }

let init shape f =
  { shape; data = Array.init (Shape.num_elements shape) f }

let of_list dims values =
  create (Shape.of_list dims) (Array.of_list values)

let get t idx = t.data.(Shape.linear_index t.shape idx)
let get_linear t i = t.data.(i)
let set_linear t i v = t.data.(i) <- v

let copy t = { t with data = Array.copy t.data }

(* The in-place variants back both the plain combinators and the
   executor's reusable contexts: the destination is written element by
   element in ascending linear order, so filling a preallocated buffer is
   bit-identical to allocating a fresh one.  The element loops read the
   operand data arrays directly - one bounds-checked load per operand per
   element, no per-element closure dispatch through [Array.init]. *)

let map_into f src ~dst =
  if not (Shape.equal src.shape dst.shape) then
    mismatch "map_into: shapes %s vs %s" (Shape.to_string src.shape)
      (Shape.to_string dst.shape);
  let s = src.data and d = dst.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- f s.(i)
  done;
  dst

let map2_into f a b ~dst =
  if not (Shape.equal a.shape b.shape) then
    mismatch "map2: shapes %s vs %s" (Shape.to_string a.shape)
      (Shape.to_string b.shape);
  if not (Shape.equal a.shape dst.shape) then
    mismatch "map2_into: dst shape %s vs %s" (Shape.to_string dst.shape)
      (Shape.to_string a.shape);
  let x = a.data and y = b.data and d = dst.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- f x.(i) y.(i)
  done;
  dst

let map f t = map_into f t ~dst:{ t with data = Array.make (Array.length t.data) 0. }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    mismatch "map2: shapes %s vs %s" (Shape.to_string a.shape)
      (Shape.to_string b.shape);
  map2_into f a b ~dst:{ a with data = Array.make (Array.length a.data) 0. }

let reshape t shape =
  if Shape.num_elements shape <> num_elements t then
    mismatch "reshape: element count mismatch";
  { t with shape }

let equal_approx ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  && Array.for_all2
       (fun x y ->
         x = y (* covers equal infinities *)
         || (Float.is_nan x && Float.is_nan y)
         ||
         let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
         Float.abs (x -. y) <= eps *. scale)
       a.data b.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let worst = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. b.data.(i)) in
        if d > !worst then worst := d)
      a.data;
    !worst
  end

let pp fmt t =
  Format.fprintf fmt "%s[" (Shape.to_string t.shape);
  let n = Stdlib.min 8 (Array.length t.data) in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if Array.length t.data > n then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"

(* Deterministic pseudo-random fill for tests/workloads (no global state). *)
let random ~seed shape =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. float_of_int 0x3FFFFFFF *. 2.) -. 1.
  in
  init shape (fun _ -> next ())
