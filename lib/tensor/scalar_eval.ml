(* Per-element ("register") evaluation of graph ops.

   The fused execution engine computes Register-placement values inside
   its consumers' loops instead of materializing them.  [compile] turns
   one node into an element accessor [int -> float] over the node's
   output linear index, given accessors for its operands.  Every case
   performs the same float operations in the same order as the matching
   case of [Interp.eval_node_into] restricted to one output element, and
   the same integer index arithmetic, so a loop that calls the accessor
   for i = 0..n-1 is bit-identical to the interpreter's materializing
   evaluation.

   Reductions deserve the one-line proof: [Interp] sweeps all input
   linear indices ascending, dispatching each into its output
   accumulator.  Restricted to a single accumulator that is exactly "its
   contributing input indices, ascending" - and that is the order the
   per-element fold below visits them in (reduced axes ascending, i.e.
   strides descending, lexicographic = ascending linear order). *)

open Astitch_ir

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Ops whose single output element is a pure function of operand
   elements; [Scatter_add] writes are input-driven (no per-output
   formula) and [Parameter] is external storage, not a computation. *)
let scalarizable : Op.t -> bool = function
  | Op.Parameter _ | Op.Scatter_add _ -> false
  | _ -> true

(* Row-major multi-index decode of [i] by [strides] into [dst]; the same
   div/mod walk [Shape.multi_index] performs. *)
let decode strides i dst =
  let rem = ref i in
  for d = 0 to Array.length strides - 1 do
    dst.(d) <- !rem / strides.(d);
    rem := !rem mod strides.(d)
  done

let compile (g : Graph.t) (nd : Graph.node)
    ~(operand : Op.node_id -> int -> float) : int -> float =
  let out_shape = nd.shape in
  let shape_of id = Graph.shape g id in
  match nd.op with
  | Op.Parameter { name } -> unsupported "parameter %s has no element formula" name
  | Op.Constant { value } -> fun _ -> value
  | Op.Iota { axis } ->
      fun i -> float_of_int (Shape.multi_index out_shape i).(axis)
  | Op.Unary { kind; input } ->
      let f = Interp.unary_fn kind and s = operand input in
      fun i -> f (s i)
  | Op.Binary { kind; lhs; rhs } ->
      let f = Interp.binary_fn kind and a = operand lhs and b = operand rhs in
      fun i -> f (a i) (b i)
  | Op.Select { pred; on_true; on_false } ->
      let p = operand pred and t = operand on_true and f = operand on_false in
      fun i -> if p i <> 0. then t i else f i
  | Op.Broadcast { input; dims } ->
      (* same stride table as Interp: output axis dims.(a) advances the
         input by the input's stride of axis a, replicated axes by 0 *)
      let s = operand input in
      let rank = Shape.rank out_shape in
      let out_strides = Shape.strides out_shape in
      let in_strides = Shape.strides (shape_of input) in
      let bstride = Array.make rank 0 in
      Array.iteri (fun a d -> bstride.(d) <- in_strides.(a)) dims;
      fun i ->
        let rem = ref i and src = ref 0 in
        for d = 0 to rank - 1 do
          src := !src + (!rem / out_strides.(d) * bstride.(d));
          rem := !rem mod out_strides.(d)
        done;
        s !src
  | Op.Reshape { input } ->
      (* row-major linear order is preserved across reshape *)
      operand input
  | Op.Transpose { input; perm } ->
      let s = operand input in
      let out_strides = Shape.strides out_shape in
      let in_strides = Shape.strides (shape_of input) in
      (* out axis oi advances the input linearly by stride of in axis
         perm.(oi): the linear form of Interp's in_idx.(perm.(oi)) <-
         out_idx.(oi) *)
      let tstride =
        Array.mapi (fun oi p -> ignore oi; in_strides.(p)) perm
      in
      fun i ->
        let rem = ref i and src = ref 0 in
        for d = 0 to Array.length out_strides - 1 do
          src := !src + (!rem / out_strides.(d) * tstride.(d));
          rem := !rem mod out_strides.(d)
        done;
        s !src
  | Op.Reduce { input; kind; axes } ->
      let s = operand input in
      let in_shape = shape_of input in
      let in_strides = Shape.strides in_shape in
      let in_rank = Shape.rank in_shape in
      let reduced =
        let r = Array.copy axes in
        Array.sort compare r;
        r
      in
      let kept =
        Array.of_list
          (List.filter
             (fun ax -> not (Array.exists (fun a -> a = ax) reduced))
             (List.init in_rank Fun.id))
      in
      let out_strides = Shape.strides out_shape in
      let init = Interp.reduce_init kind in
      let step = Interp.reduce_step kind in
      let mean_n =
        if kind = Op.Mean then
          float_of_int (Shape.elements_along in_shape axes)
        else 1.
      in
      let rdims = Array.map (fun ax -> Shape.dim in_shape ax) reduced in
      let rstrides = Array.map (fun ax -> in_strides.(ax)) reduced in
      let nred = Array.length reduced in
      let rc = Array.make (Stdlib.max 1 nred) 0 in
      fun j ->
        (* base input offset from the kept coordinates of output j *)
        let rem = ref j and base = ref 0 in
        Array.iteri
          (fun d ax ->
            base := !base + (!rem / out_strides.(d) * in_strides.(ax));
            rem := !rem mod out_strides.(d))
          kept;
        (* fold contributing inputs in ascending linear order: odometer
           over the reduced axes, most-significant (largest-stride) first *)
        Array.fill rc 0 (Stdlib.max 1 nred) 0;
        let acc = ref init in
        let continue_ = ref true in
        while !continue_ do
          let off = ref 0 in
          for d = 0 to nred - 1 do
            off := !off + (rc.(d) * rstrides.(d))
          done;
          acc := step !acc (s (!base + !off));
          (* increment the odometer, last axis fastest *)
          let d = ref (nred - 1) in
          let carried = ref true in
          while !carried && !d >= 0 do
            rc.(!d) <- rc.(!d) + 1;
            if rc.(!d) < rdims.(!d) then carried := false
            else begin
              rc.(!d) <- 0;
              decr d
            end
          done;
          if !carried then continue_ := false
        done;
        if kind = Op.Mean then !acc /. mean_n else !acc
  | Op.Concat { inputs; axis } ->
      let srcs = Array.of_list (List.map operand inputs) in
      let shapes = Array.of_list (List.map shape_of inputs) in
      let strides = Array.map Shape.strides shapes in
      let axis_dims = Array.map (fun sh -> Shape.dim sh axis) shapes in
      let out_strides = Shape.strides out_shape in
      let rank = Shape.rank out_shape in
      let idx = Array.make rank 0 in
      fun i ->
        decode out_strides i idx;
        let rec pick seg offset =
          if idx.(axis) < offset + axis_dims.(seg) then begin
            let src = ref 0 in
            for d = 0 to rank - 1 do
              let x = if d = axis then idx.(d) - offset else idx.(d) in
              src := !src + (x * strides.(seg).(d))
            done;
            srcs.(seg) !src
          end
          else pick (seg + 1) (offset + axis_dims.(seg))
        in
        pick 0 0
  | Op.Slice { input; starts; stops = _ } ->
      let s = operand input in
      let in_strides = Shape.strides (shape_of input) in
      let out_strides = Shape.strides out_shape in
      let rank = Shape.rank out_shape in
      let idx = Array.make rank 0 in
      fun i ->
        decode out_strides i idx;
        let src = ref 0 in
        for d = 0 to rank - 1 do
          src := !src + ((idx.(d) + starts.(d)) * in_strides.(d))
        done;
        s !src
  | Op.Pad { input; low; high = _ } ->
      let s = operand input in
      let in_shape = shape_of input in
      let in_strides = Shape.strides in_shape in
      let out_strides = Shape.strides out_shape in
      let rank = Shape.rank out_shape in
      let idx = Array.make rank 0 in
      fun i ->
        decode out_strides i idx;
        let src = ref 0 and inside = ref true in
        for d = 0 to rank - 1 do
          let x = idx.(d) - low.(d) in
          if x < 0 || x >= Shape.dim in_shape d then inside := false
          else src := !src + (x * in_strides.(d))
        done;
        if !inside then s !src else 0.
  | Op.Gather { params; indices } ->
      let p = operand params and idx = operand indices in
      let ps = shape_of params in
      let n = Shape.dim ps 0 in
      let row = Shape.num_elements ps / n in
      let clamp i = Stdlib.max 0 (Stdlib.min (n - 1) i) in
      fun i ->
        let r = i / row and off = i mod row in
        let src = clamp (int_of_float (idx r)) in
        p ((src * row) + off)
  | Op.Scatter_add _ ->
      unsupported "scatter_add %d has no per-output element formula" nd.id
  | Op.Max_pool { input; window; stride } ->
      let x = operand input in
      let in_strides = Shape.strides (shape_of input) in
      let out_strides = Shape.strides out_shape in
      let idx = Array.make 4 0 in
      fun i ->
        decode out_strides i idx;
        let nb = idx.(0) and oy = idx.(1) and ox = idx.(2) and cc = idx.(3) in
        let best = ref Float.neg_infinity in
        for wy = 0 to window - 1 do
          for wx = 0 to window - 1 do
            let v =
              x
                ((nb * in_strides.(0))
                + (((oy * stride) + wy) * in_strides.(1))
                + (((ox * stride) + wx) * in_strides.(2))
                + (cc * in_strides.(3)))
            in
            if v > !best then best := v
          done
        done;
        !best
  | Op.Dot { lhs; rhs } ->
      let a = operand lhs and b = operand rhs in
      let ashape = shape_of lhs in
      let r = Shape.rank ashape in
      let m = (ashape :> int array).(r - 2)
      and k = (ashape :> int array).(r - 1) in
      let n = (shape_of rhs :> int array).(r - 1) in
      fun l ->
        let bt = l / (m * n) in
        let rem = l mod (m * n) in
        let i = rem / n and j = rem mod n in
        let acc = ref 0. in
        for kk = 0 to k - 1 do
          acc :=
            !acc
            +. (a ((bt * m * k) + (i * k) + kk)
               *. b ((bt * k * n) + (kk * n) + j))
        done;
        !acc
  | Op.Conv2d { input; filter; stride } ->
      let x = operand input and w = operand filter in
      let xs = shape_of input and ws = shape_of filter in
      let c = Shape.dim xs 3 in
      let kh = Shape.dim ws 0 and kw = Shape.dim ws 1 in
      let in_strides = Shape.strides xs in
      let w_strides = Shape.strides ws in
      let out_strides = Shape.strides out_shape in
      let idx = Array.make 4 0 in
      fun i ->
        decode out_strides i idx;
        let nb = idx.(0) and oy = idx.(1) and ox = idx.(2) and oz = idx.(3) in
        let acc = ref 0. in
        for ky = 0 to kh - 1 do
          for kx = 0 to kw - 1 do
            for ci = 0 to c - 1 do
              let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
              acc :=
                !acc
                +. (x
                      ((nb * in_strides.(0)) + (iy * in_strides.(1))
                      + (ix * in_strides.(2)) + (ci * in_strides.(3)))
                   *. w
                        ((ky * w_strides.(0)) + (kx * w_strides.(1))
                        + (ci * w_strides.(2)) + (oz * w_strides.(3))))
            done
          done
        done;
        !acc
