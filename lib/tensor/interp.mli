(** Reference graph interpreter — the semantic oracle.

    Direct per-op evaluation, no fusion.  Every compiled kernel plan must
    reproduce these values. *)

open Astitch_ir

exception Missing_parameter of string

val unary_fn : Op.unary_kind -> float -> float
val binary_fn : Op.binary_kind -> float -> float -> float
val reduce_init : Op.reduce_kind -> float
val reduce_step : Op.reduce_kind -> float -> float -> float

val eval_node :
  Graph.t ->
  Tensor.t array ->
  params:(string * Tensor.t) list ->
  Graph.node ->
  Tensor.t
(** Evaluate one node given the values of all earlier nodes. *)

val eval_node_into :
  Graph.t ->
  Tensor.t array ->
  params:(string * Tensor.t) list ->
  dst:Tensor.t option ->
  Graph.node ->
  Tensor.t
(** [eval_node] writing into a preallocated destination when [dst] is
    [Some t]: elements are produced in the same order with the same float
    operations, so results are bit-identical to the allocating mode.
    [Parameter] and [Reshape] alias existing storage and never touch the
    destination; callers reusing buffers must not rely on it for them. *)

val eval_all : Graph.t -> params:(string * Tensor.t) list -> Tensor.t array
(** Values of every node, indexed by node id.
    @raise Missing_parameter if a graph parameter is unbound. *)

val run : Graph.t -> params:(string * Tensor.t) list -> Tensor.t list
(** Values of the graph outputs. *)
