(* Reference graph interpreter: direct, per-op evaluation, no fusion.

   This is the semantic oracle — every compiled kernel plan, whichever
   backend produced it, must compute the same values (see the runtime
   executor and the property tests). *)

open Astitch_ir

exception Missing_parameter of string

(* Abramowitz & Stegun 7.1.26 (Horner form), ~1e-7 absolute error —
   comparable to a GPU erf intrinsic, within test tolerance. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let ax = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. ax)) in
  let poly =
    t
    *. (0.254829592
       +. t
          *. (-0.284496736
             +. t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))
  in
  sign *. (1. -. (poly *. Stdlib.exp (-.ax *. ax)))

let unary_fn : Op.unary_kind -> float -> float = function
  | Op.Neg -> fun x -> -.x
  | Op.Abs -> Float.abs
  | Op.Sign -> fun x -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | Op.Relu -> fun x -> Float.max 0. x
  | Op.Rcp -> fun x -> 1. /. x
  | Op.Exp -> Stdlib.exp
  | Op.Log -> Stdlib.log
  | Op.Tanh -> Stdlib.tanh
  | Op.Sigmoid -> fun x -> 1. /. (1. +. Stdlib.exp (-.x))
  | Op.Sqrt -> Stdlib.sqrt
  | Op.Rsqrt -> fun x -> 1. /. Stdlib.sqrt x
  | Op.Erf -> erf

let binary_fn : Op.binary_kind -> float -> float -> float = function
  | Op.Add -> ( +. )
  | Op.Sub -> ( -. )
  | Op.Mul -> ( *. )
  | Op.Div -> ( /. )
  | Op.Max -> Float.max
  | Op.Min -> Float.min
  | Op.Pow -> ( ** )
  | Op.Lt -> fun a b -> if a < b then 1. else 0.
  | Op.Gt -> fun a b -> if a > b then 1. else 0.
  | Op.Eq -> fun a b -> if a = b then 1. else 0.

let reduce_init = function
  | Op.Sum | Op.Mean -> 0.
  | Op.Max_r -> Float.neg_infinity
  | Op.Min_r -> Float.infinity

let reduce_step = function
  | Op.Sum | Op.Mean -> ( +. )
  | Op.Max_r -> Float.max
  | Op.Min_r -> Float.min

(* Evaluate one node, writing dense results into [dst] when one is given
   (the executor's reusable contexts preallocate one buffer per node) and
   into a fresh tensor otherwise.  Every element is written in the same
   order with the same float operations either way, so the two modes are
   bit-identical.  [Parameter] returns the bound tensor and [Reshape]
   returns a view of its operand's data in both modes - neither consumes
   the destination. *)
let eval_node_into _g (values : Tensor.t array) ~params ~dst
    (nd : Graph.node) : Tensor.t =
  let v id = values.(id) in
  let out_shape = nd.shape in
  let target () =
    match dst with
    | Some t ->
        if not (Shape.equal (Tensor.shape t) out_shape) then
          Tensor.mismatch "eval destination has shape %s, node %d wants %s"
            (Shape.to_string (Tensor.shape t))
            nd.id
            (Shape.to_string out_shape);
        t
    | None -> Tensor.zeros out_shape
  in
  (* fill [target] element by element in ascending linear order *)
  let tabulate f =
    let out = target () in
    for i = 0 to Tensor.num_elements out - 1 do
      Tensor.set_linear out i (f i)
    done;
    out
  in
  match nd.op with
  | Op.Parameter { name } -> (
      match List.assoc_opt name params with
      | None -> raise (Missing_parameter name)
      | Some t ->
          if not (Shape.equal (Tensor.shape t) out_shape) then
            Tensor.mismatch "parameter %s: bound shape %s, declared %s" name
              (Shape.to_string (Tensor.shape t))
              (Shape.to_string out_shape);
          t)
  | Op.Constant { value } -> tabulate (fun _ -> value)
  | Op.Iota { axis } ->
      tabulate (fun i ->
          float_of_int (Shape.multi_index out_shape i).(axis))
  | Op.Unary { kind; input } ->
      Tensor.map_into (unary_fn kind) (v input) ~dst:(target ())
  | Op.Binary { kind; lhs; rhs } ->
      Tensor.map2_into (binary_fn kind) (v lhs) (v rhs) ~dst:(target ())
  | Op.Broadcast { input; dims } ->
      (* Precompute the output-linear -> input-linear stride table once:
         output axis [dims.(a)] advances the input by the input's stride
         of axis [a], replicated axes advance it by 0.  The per-element
         work is then one div/mod walk over the output strides instead of
         materializing a multi-index and re-deriving strides per element. *)
      let in_t = v input in
      let rank = Shape.rank out_shape in
      let out_strides = Shape.strides out_shape in
      let in_strides = Shape.strides (Tensor.shape in_t) in
      let bstride = Array.make rank 0 in
      Array.iteri (fun a d -> bstride.(d) <- in_strides.(a)) dims;
      tabulate (fun i ->
          let rem = ref i and src = ref 0 in
          for d = 0 to rank - 1 do
            src := !src + (!rem / out_strides.(d) * bstride.(d));
            rem := !rem mod out_strides.(d)
          done;
          Tensor.get_linear in_t !src)
  | Op.Reduce { input; kind; axes } ->
      let in_t = v input in
      let in_shape = Tensor.shape in_t in
      let out = target () in
      for j = 0 to Tensor.num_elements out - 1 do
        Tensor.set_linear out j (reduce_init kind)
      done;
      let step = reduce_step kind in
      let n_in = Tensor.num_elements in_t in
      for i = 0 to n_in - 1 do
        let idx = Shape.multi_index in_shape i in
        let out_idx = Array.of_list (
          List.filteri (fun ax _ -> not (Array.exists (fun a -> a = ax) axes))
            (Array.to_list idx))
        in
        let j = if Shape.rank out_shape = 0 then 0
                else Shape.linear_index out_shape out_idx in
        Tensor.set_linear out j (step (Tensor.get_linear out j) (Tensor.get_linear in_t i))
      done;
      if kind = Op.Mean then begin
        let n = float_of_int (Shape.elements_along in_shape axes) in
        for j = 0 to Tensor.num_elements out - 1 do
          Tensor.set_linear out j (Tensor.get_linear out j /. n)
        done
      end;
      out
  | Op.Reshape { input } -> Tensor.reshape (v input) out_shape
  | Op.Transpose { input; perm } ->
      let in_t = v input in
      let in_shape = Tensor.shape in_t in
      tabulate (fun i ->
          let out_idx = Shape.multi_index out_shape i in
          let in_idx = Array.make (Shape.rank in_shape) 0 in
          Array.iteri (fun oi p -> in_idx.(p) <- out_idx.(oi)) perm;
          Tensor.get in_t in_idx)
  | Op.Select { pred; on_true; on_false } ->
      let p = v pred and t = v on_true and f = v on_false in
      tabulate (fun i ->
          if Tensor.get_linear p i <> 0. then Tensor.get_linear t i
          else Tensor.get_linear f i)
  | Op.Concat { inputs; axis } ->
      let tensors = List.map v inputs in
      tabulate (fun i ->
          let idx = Shape.multi_index out_shape i in
          let rec pick offset = function
            | [] -> assert false
            | t :: rest ->
                let d = Shape.dim (Tensor.shape t) axis in
                if idx.(axis) < offset + d then begin
                  let local = Array.copy idx in
                  local.(axis) <- idx.(axis) - offset;
                  Tensor.get t local
                end
                else pick (offset + d) rest
          in
          pick 0 tensors)
  | Op.Slice { input; starts; stops = _ } ->
      let in_t = v input in
      tabulate (fun i ->
          let idx = Shape.multi_index out_shape i in
          let src = Array.mapi (fun d x -> x + starts.(d)) idx in
          Tensor.get in_t src)
  | Op.Pad { input; low; high = _ } ->
      let in_t = v input in
      let in_shape = Tensor.shape in_t in
      tabulate (fun i ->
          let idx = Shape.multi_index out_shape i in
          let src = Array.mapi (fun d x -> x - low.(d)) idx in
          let inside =
            Array.for_all2 (fun x bound -> x >= 0 && x < bound) src
              (in_shape :> int array)
          in
          if inside then Tensor.get in_t src else 0.)
  | Op.Gather { params; indices } ->
      let p = v params and idx = v indices in
      let ps = Tensor.shape p in
      let n = Shape.dim ps 0 in
      let row = Shape.num_elements ps / n in
      let clamp i = Stdlib.max 0 (Stdlib.min (n - 1) i) in
      tabulate (fun i ->
          let r = i / row and off = i mod row in
          let src = clamp (int_of_float (Tensor.get_linear idx r)) in
          Tensor.get_linear p ((src * row) + off))
  | Op.Scatter_add { indices; updates; rows } ->
      let idx = v indices and u = v updates in
      let us = Tensor.shape u in
      let k = Shape.dim us 0 in
      let row = Shape.num_elements us / k in
      let clamp i = Stdlib.max 0 (Stdlib.min (rows - 1) i) in
      let out = target () in
      for j = 0 to Tensor.num_elements out - 1 do
        Tensor.set_linear out j 0.
      done;
      for r = 0 to k - 1 do
        let dst = clamp (int_of_float (Tensor.get_linear idx r)) in
        for off = 0 to row - 1 do
          let j = (dst * row) + off in
          Tensor.set_linear out j
            (Tensor.get_linear out j +. Tensor.get_linear u ((r * row) + off))
        done
      done;
      out
  | Op.Max_pool { input; window; stride } ->
      let x = v input in
      tabulate (fun i ->
          let idx = Shape.multi_index out_shape i in
          let nb = idx.(0) and oy = idx.(1) and ox = idx.(2) and cc = idx.(3) in
          let best = ref Float.neg_infinity in
          for wy = 0 to window - 1 do
            for wx = 0 to window - 1 do
              let v =
                Tensor.get x
                  [| nb; (oy * stride) + wy; (ox * stride) + wx; cc |]
              in
              if v > !best then best := v
            done
          done;
          !best)
  | Op.Dot { lhs; rhs } ->
      let a = v lhs and b = v rhs in
      let ashape = Tensor.shape a in
      let r = Shape.rank ashape in
      let m = ashape.(r - 2) and k = ashape.(r - 1) in
      let n = (Tensor.shape b).(r - 1) in
      let batch = Shape.num_elements ashape / (m * k) in
      let out = target () in
      for bt = 0 to batch - 1 do
        for i = 0 to m - 1 do
          for j = 0 to n - 1 do
            let acc = ref 0. in
            for kk = 0 to k - 1 do
              acc :=
                !acc
                +. Tensor.get_linear a ((bt * m * k) + (i * k) + kk)
                   *. Tensor.get_linear b ((bt * k * n) + (kk * n) + j)
            done;
            Tensor.set_linear out ((bt * m * n) + (i * n) + j) !acc
          done
        done
      done;
      out
  | Op.Conv2d { input; filter; stride } ->
      let x = v input and w = v filter in
      let xs = Tensor.shape x and ws = Tensor.shape w in
      let h = xs.(1) and wdt = xs.(2) and c = xs.(3) in
      let kh = ws.(0) and kw = ws.(1) in
      let oh = out_shape.(1) and ow = out_shape.(2) in
      ignore wdt;
      tabulate (fun i ->
          let idx = Shape.multi_index out_shape i in
          let nb = idx.(0) and oy = idx.(1) and ox = idx.(2) and oz = idx.(3) in
          let acc = ref 0. in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              for ci = 0 to c - 1 do
                let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
                acc :=
                  !acc
                  +. Tensor.get x [| nb; iy; ix; ci |]
                     *. Tensor.get w [| ky; kx; ci; oz |]
              done
            done
          done;
          ignore (h, oh, ow);
          !acc)

let eval_node g values ~params nd = eval_node_into g values ~params ~dst:None nd

let eval_all g ~params =
  let values = Array.make (Graph.num_nodes g) (Tensor.scalar 0.) in
  Graph.iter_nodes
    (fun nd -> values.(nd.id) <- eval_node g values ~params nd)
    g;
  values

let run g ~params =
  let values = eval_all g ~params in
  List.map (fun id -> values.(id)) (Graph.outputs g)
