(* The per-table / per-figure reproduction harness (DESIGN.md Sec 3).

   Every function prints a paper-shaped table from freshly simulated
   results.  Graphs and compiled plans are memoized: several experiments
   look at the same (model, backend) pair. *)

open Astitch_ir
open Astitch_simt
open Astitch_plan
open Astitch_runtime
open Astitch_workloads

let arch = Arch.v100

type mode = Inference | Training | Amp_inference

let mode_to_string = function
  | Inference -> "infer"
  | Training -> "train"
  | Amp_inference -> "amp"

(* --- Backend registry ---------------------------------------------------- *)

let tf = Astitch_backends.Tf_backend.backend
let xla = Astitch_backends.Xla_backend.backend
let tvm = Astitch_backends.Tvm_backend.backend
let ansor = Astitch_backends.Tvm_backend.ansor
let trt = Astitch_backends.Trt_backend.backend
let astitch = Astitch_core.Astitch.full_backend
let atm = Astitch_core.Astitch.atm_backend
let hdm = Astitch_core.Astitch.hdm_backend

(* --- Memoized graphs and plans -------------------------------------------- *)

let graph_cache : (string, Graph.t) Hashtbl.t = Hashtbl.create 16

let graph (entry : Zoo.entry) mode =
  let key = entry.name ^ "/" ^ mode_to_string mode in
  match Hashtbl.find_opt graph_cache key with
  | Some g -> g
  | None ->
      let g =
        match mode with
        | Inference -> entry.inference ()
        | Amp_inference -> Amp.to_half (entry.inference ())
        | Training -> (
            match entry.training with
            | Some t -> t ()
            | None -> invalid_arg (entry.name ^ " has no training graph"))
      in
      Hashtbl.replace graph_cache key g;
      g

let result_cache : (string, Session.result) Hashtbl.t = Hashtbl.create 32

let result (entry : Zoo.entry) mode (backend : Backend_intf.t) =
  let key =
    entry.name ^ "/" ^ mode_to_string mode ^ "/" ^ backend.name
  in
  match Hashtbl.find_opt result_cache key with
  | Some r -> r
  | None ->
      let r = Session.compile backend arch (graph entry mode) in
      Kernel_plan.check r.plan;
      Hashtbl.replace result_cache key r;
      r

let total_ms entry mode backend =
  (result entry mode backend).profile.Profile.total_time_us /. 1000.

let models = Zoo.all
let training_models =
  List.filter (fun (e : Zoo.entry) -> e.training <> None) Zoo.all

(* --- Figure 1: ratio of memory-intensive computations --------------------- *)

let fig1 () =
  let rows =
    List.map
      (fun (e : Zoo.entry) ->
        let r = result e Inference tf in
        let p = r.profile in
        let exec = p.mem_time_us +. p.compute_time_us in
        let time_ratio = if exec > 0. then p.mem_time_us /. exec else 0. in
        let mem_k = Profile.mem_kernel_count p in
        let all_k = List.length r.plan.kernels in
        ( e.name,
          time_ratio,
          float_of_int mem_k /. float_of_int (Stdlib.max 1 all_k) ))
      models
  in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0. rows
    /. float_of_int (List.length rows)
  in
  Report.print_table
    ~title:
      "Figure 1: ratio of memory-intensive computations (TensorFlow baseline)"
    ~header:[ "model"; "time ratio"; "kernel-count ratio" ]
    (List.map
       (fun (name, t, k) -> [ name; Report.pct t; Report.pct k ])
       rows
    @ [
        [
          "average";
          Report.pct (avg (fun (_, t, _) -> t));
          Report.pct (avg (fun (_, _, k) -> k));
        ];
      ])

(* --- Figure 11: end-to-end speedups ---------------------------------------- *)

let speedup_row entry mode baselines =
  let base = total_ms entry mode tf in
  List.map (fun b -> base /. total_ms entry mode b) baselines

let fig11a () =
  let contenders = [ tf; xla; trt; astitch ] in
  let rows =
    List.map
      (fun (e : Zoo.entry) ->
        e.name :: List.map Report.speedup (speedup_row e Inference contenders))
      models
  in
  let geo_means =
    List.mapi
      (fun i _ ->
        let prod =
          List.fold_left
            (fun acc (e : Zoo.entry) ->
              acc *. List.nth (speedup_row e Inference contenders) i)
            1. models
        in
        prod ** (1. /. float_of_int (List.length models)))
      contenders
  in
  Report.print_table
    ~title:"Figure 11a: inference speedup over TensorFlow (higher is better)"
    ~header:[ "model"; "TF"; "XLA"; "TensorRT"; "AStitch" ]
    (rows @ [ "geo-mean" :: List.map Report.speedup geo_means ]);
  (* the headline comparison of the abstract: AStitch vs XLA *)
  let vs_xla =
    List.map
      (fun (e : Zoo.entry) ->
        total_ms e Inference xla /. total_ms e Inference astitch)
      models
  in
  let avg = List.fold_left ( +. ) 0. vs_xla /. float_of_int (List.length vs_xla) in
  let best = List.fold_left Float.max 0. vs_xla in
  Printf.printf
    "AStitch vs XLA (inference): average %.2fx, max %.2fx (paper: 1.84x avg, 2.73x max)\n\n"
    avg best

let fig11b () =
  let contenders = [ tf; xla; astitch ] in
  Report.print_table
    ~title:"Figure 11b: training speedup over TensorFlow"
    ~header:[ "model"; "TF"; "XLA"; "AStitch" ]
    (List.map
       (fun (e : Zoo.entry) ->
         e.name :: List.map Report.speedup (speedup_row e Training contenders))
       training_models)

let fig12 () =
  let contenders = [ tf; xla; trt; astitch ] in
  Report.print_table
    ~title:"Figure 12: inference speedup under AMP (all systems in f16)"
    ~header:[ "model"; "TF"; "XLA"; "TensorRT"; "AStitch" ]
    (List.map
       (fun (e : Zoo.entry) ->
         e.name
         :: List.map Report.speedup (speedup_row e Amp_inference contenders))
       models)

(* --- Figure 13: MEM / OVERHEAD breakdown ----------------------------------- *)

let fig13 () =
  Report.print_table
    ~title:
      "Figure 13: breakdown of memory-intensive time (MEM) and \
       non-computation OVERHEAD, normalized to XLA's MEM+OVERHEAD"
    ~header:[ "model"; "XLA MEM"; "XLA OVH"; "AS MEM"; "AS OVH" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let px = (result e Inference xla).profile in
         let pa = (result e Inference astitch).profile in
         let base = px.mem_time_us +. px.overhead_us in
         [
           e.name;
           Report.pct (px.mem_time_us /. base);
           Report.pct (px.overhead_us /. base);
           Report.pct (pa.mem_time_us /. base);
           Report.pct (pa.overhead_us /. base);
         ])
       models)

(* --- Table 3: kernel and CPY counts ----------------------------------------- *)

let table3 () =
  let count e (b : Backend_intf.t) =
    let r = result e Inference b in
    (Profile.mem_kernel_count r.profile, Kernel_plan.cpy_count r.plan)
  in
  Report.print_table
    ~title:"Table 3: memory-intensive kernels (MEM) and memcpy/memset calls (CPY)"
    ~header:[ "model"; "XLA MEM"; "AS MEM"; "XLA CPY"; "AS CPY" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let xm, xc = count e xla and am, ac = count e astitch in
         [
           e.name;
           string_of_int xm;
           string_of_int am;
           string_of_int xc;
           string_of_int ac;
         ])
       models);
  let saved =
    List.fold_left
      (fun acc (e : Zoo.entry) ->
        let xm, _ = count e xla and am, _ = count e astitch in
        acc +. (1. -. (float_of_int am /. float_of_int xm)))
      0. models
    /. float_of_int (List.length models)
  in
  Printf.printf
    "Average memory-intensive kernel calls saved: %.1f%% (paper: 65.7%%)\n\n"
    (100. *. saved)

(* --- Figure 14: parallelism of the top-80%% kernels -------------------------- *)

let fig14 () =
  Report.print_table
    ~title:
      "Figure 14: average occupancy / SM efficiency of top-80% \
       memory-intensive kernels"
    ~header:[ "model"; "XLA occ"; "AS occ"; "XLA effi"; "AS effi" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let top b = Profile.top_mem_kernels ~frac:0.8 (result e Inference b).profile in
         let tx = top xla and ta = top astitch in
         [
           e.name;
           Report.pct (Profile.avg_occupancy tx);
           Report.pct (Profile.avg_occupancy ta);
           Report.pct (Profile.avg_sm_efficiency tx);
           Report.pct (Profile.avg_sm_efficiency ta);
         ])
       models)

(* --- Table 4: CRNN ablation --------------------------------------------------- *)

let table4 () =
  let crnn = List.find (fun (e : Zoo.entry) -> e.name = "CRNN") models in
  let rows =
    List.map
      (fun (label, b) -> [ label; Report.ms_of_us (total_ms crnn Inference b *. 1000.) ])
      [ ("XLA", xla); ("+ATM", atm); ("+HDM", hdm); ("AStitch", astitch) ]
  in
  Report.print_table
    ~title:
      "Table 4: CRNN ablation (XLA -> +adaptive thread mapping -> \
       +hierarchical data management -> +dominant merging)"
    ~header:[ "configuration"; "time" ] rows

(* Design-choice ablation across every model: the Table 4 ladder applied
   to all five workloads (inference). *)
let ablation () =
  Report.print_table
    ~title:
      "Ablation across all models: inference time under \
       XLA / +ATM / +HDM / full AStitch"
    ~header:[ "model"; "XLA"; "+ATM"; "+HDM"; "AStitch"; "AS vs XLA" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let t b = total_ms e Inference b in
         [
           e.name;
           Report.ms_of_us (t xla *. 1000.);
           Report.ms_of_us (t atm *. 1000.);
           Report.ms_of_us (t hdm *. 1000.);
           Report.ms_of_us (t astitch *. 1000.);
           Report.speedup (t xla /. t astitch);
         ])
       models)

(* --- Figures 15/16: per-kernel occupancy / efficiency trends ------------------ *)

let trend ~title entry backend_a label_a backend_b label_b =
  let series b =
    Profile.mem_kernels_by_time (result entry Inference b).profile
  in
  let sa = series backend_a and sb = series backend_b in
  let n = Stdlib.min 15 (Stdlib.max (List.length sa) (List.length sb)) in
  let cell s i =
    match List.nth_opt s i with
    | None -> [ "-"; "-" ]
    | Some (kp : Profile.kernel_profile) ->
        [
          Report.pct kp.estimate.Cost_model.occupancy;
          Report.pct kp.estimate.Cost_model.sm_efficiency;
        ]
  in
  Report.print_table ~title
    ~header:
      [
        "rank";
        label_a ^ " occ";
        label_a ^ " effi";
        label_b ^ " occ";
        label_b ^ " effi";
      ]
    (List.init n (fun i -> string_of_int (i + 1) :: (cell sa i @ cell sb i)));
  Printf.printf "(%s: %d memory-intensive kernels; %s: %d)\n\n" label_a
    (List.length sa) label_b (List.length sb)

let fig15 () =
  let crnn = List.find (fun (e : Zoo.entry) -> e.name = "CRNN") models in
  trend
    ~title:
      "Figure 15: CRNN occupancy & SM-efficiency per kernel (descending time)"
    crnn xla "XLA" astitch "AS"

let fig16 () =
  let bert = List.find (fun (e : Zoo.entry) -> e.name = "BERT") models in
  trend
    ~title:
      "Figure 16: BERT occupancy & SM-efficiency per kernel (descending time)"
    bert ansor "Ansor" astitch "AS"

(* --- Table 5: CRNN performance counters ---------------------------------------- *)

let table5 () =
  let crnn = List.find (fun (e : Zoo.entry) -> e.name = "CRNN") models in
  let counters b = Profile.mem_counters (result crnn Inference b).profile in
  let cx = counters xla and ca = counters astitch in
  Report.print_table
    ~title:"Table 5: total counters over CRNN memory-intensive kernels"
    ~header:[ "counter"; "XLA"; "AStitch"; "AS/XLA" ]
    [
      [
        "dram_read_transactions";
        string_of_int cx.dram_read_transactions;
        string_of_int ca.dram_read_transactions;
        Report.f2
          (float_of_int ca.dram_read_transactions
          /. float_of_int (Stdlib.max 1 cx.dram_read_transactions));
      ];
      [
        "dram_write_transactions";
        string_of_int cx.dram_write_transactions;
        string_of_int ca.dram_write_transactions;
        Report.f2
          (float_of_int ca.dram_write_transactions
          /. float_of_int (Stdlib.max 1 cx.dram_write_transactions));
      ];
      [
        "inst_fp_32";
        string_of_int cx.inst_fp32;
        string_of_int ca.inst_fp32;
        Report.f2 (float_of_int ca.inst_fp32 /. float_of_int (Stdlib.max 1 cx.inst_fp32));
      ];
    ]

(* --- Sec 6.2: the Ansor case study ---------------------------------------------- *)

let ansor_case_study () =
  let bert = List.find (fun (e : Zoo.entry) -> e.name = "BERT") models in
  let ra = result bert Inference ansor and rs = result bert Inference astitch in
  let ka = Profile.mem_kernel_count ra.profile in
  let ks = Profile.mem_kernel_count rs.profile in
  let ca = Profile.mem_counters ra.profile and cs = Profile.mem_counters rs.profile in
  let trans c = c.Profile.dram_read_transactions + c.Profile.dram_write_transactions in
  Report.print_table ~title:"Sec 6.2: Ansor case study on BERT inference"
    ~header:[ "metric"; "Ansor"; "AStitch" ]
    [
      [
        "end-to-end";
        Report.ms_of_us ra.profile.Profile.total_time_us;
        Report.ms_of_us rs.profile.Profile.total_time_us;
      ];
      [ "MEM kernels"; string_of_int ka; string_of_int ks ];
      [
        "total dram transactions";
        string_of_int (trans ca);
        string_of_int (trans cs);
      ];
    ];
  Printf.printf
    "AStitch speedup %.2fx end-to-end (paper: 1.3x), %.2fx on \
     memory-intensive computations (paper: 1.4x); kernels saved %.0f%% \
     (paper: 53%%); transactions saved %.0f%% (paper: ~40%%)\n\n"
    (ra.profile.Profile.total_time_us /. rs.profile.Profile.total_time_us)
    (ra.profile.Profile.mem_time_us /. rs.profile.Profile.mem_time_us)
    (100. *. (1. -. (float_of_int ks /. float_of_int ka)))
    (100. *. (1. -. (float_of_int (trans cs) /. float_of_int (trans ca))))

(* --- Table 6: global-barrier overhead --------------------------------------------- *)

let table6 () =
  Report.print_table
    ~title:"Table 6: in-kernel global barrier cost (block size 1024, V100)"
    ~header:[ "#blocks"; "time (us)" ]
    (List.map
       (fun blocks ->
         [ string_of_int blocks; Report.f2 (Barrier.cost_us ~blocks) ])
       [ 20; 40; 60; 80; 100; 120; 140; 160 ])

(* --- Figure 6 / Figure 8: the irregular-shape pathologies -------------------------- *)

let fig6 () =
  let reduce_case rows cols =
    let b = Builder.create () in
    let x = Builder.parameter b "x" [ rows; cols ] in
    let r = Builder.reduce_sum b ~axes:[ 1 ] x in
    Builder.finish b ~outputs:[ r ]
  in
  let describe g (backend : Backend_intf.t) =
    let res = Session.compile backend arch g in
    let kp =
      List.hd (Profile.mem_kernels_by_time res.profile)
    in
    let l = kp.kernel.launch in
    ( Printf.sprintf "<<<%d, %d>>>" l.Launch.grid l.Launch.block,
      kp.estimate.Cost_model.occupancy,
      kp.estimate.Cost_model.sm_efficiency,
      kp.estimate.Cost_model.exec_time_us )
  in
  let row name g (backend : Backend_intf.t) =
    let launch, occ, eff, t = describe g backend in
    [ name; backend.name; launch; Report.pct occ; Report.pct eff; Report.us t ]
  in
  let g1 = reduce_case 750_000 32 in
  let g2 = reduce_case 64 30_000 in
  Report.print_table
    ~title:
      "Figures 6/8: irregular row-reduce shapes - naive (XLA) vs adaptive \
       (AStitch) thread mapping"
    ~header:[ "shape"; "backend"; "launch"; "occupancy"; "sm-eff"; "exec" ]
    [
      row "<750000,32>" g1 xla;
      row "<750000,32>" g1 astitch;
      row "<64,30000>" g2 xla;
      row "<64,30000>" g2 astitch;
    ]

(* --- Intro claim: memory-intensive ratio grows on A100 ------------------------------ *)

(* "the average portion of execution time contributed by memory-intensive
   operations increases to as high as 76.7% on A100": the compute/bandwidth
   ratio grew 5.6x from V100, so the same graphs get more memory-bound. *)
let fig1_a100 () =
  let ratio arch (e : Zoo.entry) =
    let plan = tf.compile arch (graph e Inference) in
    let p = Astitch_runtime.Profile.profile ~config:tf.cost_config plan in
    let exec = p.mem_time_us +. p.compute_time_us in
    if exec > 0. then p.mem_time_us /. exec else 0.
  in
  let rows =
    List.map
      (fun (e : Zoo.entry) -> (e.name, ratio Arch.v100 e, ratio Arch.a100 e))
      models
  in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0. rows
    /. float_of_int (List.length rows)
  in
  Report.print_table
    ~title:
      "Intro claim: memory-intensive time ratio, V100 vs A100 (compute \
       outpaces bandwidth across generations)"
    ~header:[ "model"; "V100"; "A100" ]
    (List.map (fun (n, v, a) -> [ n; Report.pct v; Report.pct a ]) rows
    @ [
        [
          "average";
          Report.pct (avg (fun (_, v, _) -> v));
          Report.pct (avg (fun (_, _, a) -> a));
        ];
      ])

(* --- T4 inference (Sec 6.1.1: "we have evaluated AStitch on NVIDIA T4") ------------- *)

let t4_inference () =
  let contenders = [ tf; xla; trt; astitch ] in
  let time (b : Backend_intf.t) g =
    let plan = b.compile Arch.t4 g in
    (Astitch_runtime.Profile.profile ~config:b.cost_config plan)
      .Astitch_runtime.Profile.total_time_us
  in
  Report.print_table
    ~title:"T4 inference speedup over TensorFlow (production inference GPU)"
    ~header:[ "model"; "TF"; "XLA"; "TensorRT"; "AStitch" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let g = graph e Inference in
         let base = time tf g in
         e.name
         :: List.map (fun b -> Report.speedup (base /. time b g)) contenders)
       models)

(* --- CUDA Graph comparison (Sec 7 related work) --------------------------------------- *)

let cuda_graph () =
  let cg = Astitch_backends.Cuda_graph_backend.backend in
  Report.print_table
    ~title:
      "CUDA-Graph comparison: binding kernels removes launch overhead but \
       not off-chip traffic - stitching removes both"
    ~header:[ "model"; "XLA"; "XLA+CUDA-Graph"; "AStitch" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let base = total_ms e Inference tf in
         [
           e.name;
           Report.speedup (base /. total_ms e Inference xla);
           Report.speedup (base /. total_ms e Inference cg);
           Report.speedup (base /. total_ms e Inference astitch);
         ])
       models)

(* --- Sec 6.3: production-cluster simulation ------------------------------------------- *)

(* The paper deploys AStitch on a cluster and reports ~20,000 GPU hours
   saved over 70,000 weekly tasks.  We simulate a weekly job mix over the
   five model families (23% distributed jobs consuming 56% of GPU time,
   as reported) and integrate the per-iteration savings. *)
let production () =
  let weekly_tasks = 70_000 in
  (* job mix: transformer-based, recommendation and RNN models dominate *)
  let mix =
    [ ("BERT", 0.25); ("Transformer", 0.20); ("DIEN", 0.30); ("ASR", 0.10);
      ("CRNN", 0.15) ]
  in
  let iterations_per_task = 50_000 in
  let rows, total_saved =
    List.fold_left
      (fun (rows, acc) (name, share) ->
        let e = List.find (fun (e : Zoo.entry) -> e.name = name) models in
        let mode = if e.training = None then Inference else Training in
        let tf_ms = total_ms e mode tf in
        let as_ms = total_ms e mode astitch in
        let tasks = float_of_int weekly_tasks *. share in
        let saved_hours =
          tasks
          *. float_of_int iterations_per_task
          *. (tf_ms -. as_ms) /. 1000. /. 3600.
        in
        ( rows
          @ [
              [
                name;
                (match mode with Training -> "train" | _ -> "infer");
                Printf.sprintf "%.0f" tasks;
                Report.ms_of_us (tf_ms *. 1000.);
                Report.ms_of_us (as_ms *. 1000.);
                Printf.sprintf "%.0f h" saved_hours;
              ];
            ],
          acc +. saved_hours ))
      ([], 0.) mix
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Sec 6.3: simulated production week (%d tasks, %d iterations each)"
         weekly_tasks iterations_per_task)
    ~header:[ "family"; "mode"; "tasks"; "TF iter"; "AS iter"; "GPU-h saved" ]
    rows;
  Printf.printf
    "Total simulated GPU hours saved per week: %.0f (paper: ~20,000 on its \
     own task mix and iteration counts)\n\n"
    total_saved

(* --- Memory planning: scratch-arena reuse ---------------------------------------------- *)

let memory_reuse () =
  Report.print_table
    ~title:
      "Global-scratch arena after liveness reuse (AStitch stitch kernels; \
       naive = sum of buffered intermediates)"
    ~header:[ "model"; "naive bytes"; "arena bytes"; "reuse" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let r = result e Inference astitch in
         let naive, arena =
           List.fold_left
             (fun (naive, arena) (k : Kernel_plan.kernel) ->
               let n =
                 List.fold_left
                   (fun acc (o : Kernel_plan.compiled_op) ->
                     if o.placement = Kernel_plan.Global_scratch then
                       acc + Graph.bytes r.plan.graph o.id
                     else acc)
                   0 k.ops
               in
               (naive + n, arena + k.scratch_bytes))
             (0, 0) r.plan.kernels
         in
         [
           e.name;
           string_of_int naive;
           string_of_int arena;
           (if naive = 0 then "-"
            else Report.pct (1. -. (float_of_int arena /. float_of_int naive)));
         ])
       models)

(* --- Sec 6.4.1: optimization (compilation) overhead --------------------------------- *)

let compile_overhead () =
  (* median of several runs; single sub-millisecond compiles are noisy *)
  let time f =
    let runs =
      List.init 7 (fun _ ->
          let t0 = Unix.gettimeofday () in
          let x = f () in
          ignore x;
          Unix.gettimeofday () -. t0)
      |> List.sort compare
    in
    List.nth runs 3
  in
  Report.print_table
    ~title:
      "Sec 6.4.1: optimization overhead on synthetic graphs (one-time, \
       per-graph compilation wall time)"
    ~header:[ "graph nodes"; "XLA passes"; "AStitch passes"; "ratio" ]
    (List.map
       (fun nodes ->
         let g = Synthetic.random_graph ~seed:17 ~nodes () in
         let tx = time (fun () -> xla.compile arch g) in
         let ta = time (fun () -> astitch.compile arch g) in
         [
           string_of_int (Graph.num_nodes g);
           Printf.sprintf "%.3fs" tx;
           Printf.sprintf "%.3fs" ta;
           Report.f2 (ta /. Float.max 1e-9 tx);
         ])
       [ 1_000; 2_000; 5_000; 10_000 ])

(* --- JIT amortization (the Sec 6.4.1 argument, quantified) ----------------------------- *)

(* "the overhead of AStitch is introduced only once for all following
   iterations": measure the iteration count at which one-time compilation
   pays for itself against eager TensorFlow. *)
let amortization () =
  let compile_seconds (b : Backend_intf.t) g =
    let runs =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (b.compile arch g);
          Unix.gettimeofday () -. t0)
      |> List.sort compare
    in
    (* scale our pass time to the paper's reported magnitudes: the real
       systems also run LLVM codegen (XLA ~30s, AStitch ~90s on 5-10k
       node graphs); we only keep the relative shape *)
    List.nth runs 2 *. 30_000.
  in
  Report.print_table
    ~title:
      "JIT amortization: iterations needed before one-time compilation \
       beats eager TensorFlow (compile time scaled to include codegen)"
    ~header:[ "model"; "XLA compile"; "AS compile"; "XLA break-even"; "AS break-even" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let g = graph e Inference in
         let tf_ms = total_ms e Inference tf in
         let break_even compile_s iter_ms =
           if iter_ms >= tf_ms then "never"
           else
             string_of_int
               (int_of_float
                  (Float.round (compile_s *. 1000. /. (tf_ms -. iter_ms))))
         in
         let cx = compile_seconds xla g and ca = compile_seconds astitch g in
         [
           e.name;
           Printf.sprintf "%.1fs" cx;
           Printf.sprintf "%.1fs" ca;
           break_even cx (total_ms e Inference xla);
           break_even ca (total_ms e Inference astitch);
         ])
       models)

(* --- Fused execution engine: measured run time vs the reference context ---------------- *)

(* The CLI's `bench --no-fused` flips this so the whole experiment run
   exercises the reference engine instead. *)
let fused_exec_default = ref true

let exec_engine () =
  let time_us ~runs f =
    let samples =
      Array.init runs (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (Sys.opaque_identity (f ()));
          (Unix.gettimeofday () -. t0) *. 1e6)
    in
    Array.sort compare samples;
    samples.(runs / 2)
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Fused execution engine vs reference context (tiny graphs, %s \
          engine under test; buffers = arena slots + fallback buffers vs \
          ops executed)"
         (if !fused_exec_default then "fused" else "reference"))
    ~header:
      [ "model"; "ref us"; "test us"; "speedup"; "buffers/ops"; "fallbacks" ]
    (List.map
       (fun (e : Zoo.entry) ->
         let g = e.tiny () in
         let plan = (Session.compile astitch arch g).Session.plan in
         let params = Session.random_params ~seed:11 g in
         let fctx =
           Executor.create_context ~fused:!fused_exec_default plan
         in
         let rctx = Executor.create_context ~fused:false plan in
         ignore (Executor.run_context fctx ~params);
         ignore (Executor.run_context rctx ~params);
         let tt =
           time_us ~runs:15 (fun () -> Executor.run_context fctx ~params)
         in
         let tr =
           time_us ~runs:15 (fun () -> Executor.run_context rctx ~params)
         in
         let rep = Executor.exec_report fctx in
         [
           e.name;
           Report.f1 tr;
           Report.f1 tt;
           Report.speedup (tr /. tt);
           Printf.sprintf "%d/%d" rep.Profile.buffers_allocated
             rep.Profile.nodes_executed;
           string_of_int (List.length (Executor.context_fallbacks fctx));
         ])
       models)

(* --- Driver --------------------------------------------------------------------------- *)

let all : (string * string * (unit -> unit)) list =
  [
    ("fig1", "ratio of memory-intensive computations", fig1);
    ("fig6", "irregular-shape thread mappings (also Fig 8)", fig6);
    ("fig11a", "end-to-end inference speedup", fig11a);
    ("fig11b", "end-to-end training speedup", fig11b);
    ("fig12", "inference speedup under AMP", fig12);
    ("fig13", "MEM/OVERHEAD breakdown", fig13);
    ("table3", "kernel and CPY counts", table3);
    ("fig14", "top-80% parallelism averages", fig14);
    ("table4", "CRNN ablation", table4);
    ("ablation", "Table 4 ladder across all models", ablation);
    ("fig15", "CRNN per-kernel trends", fig15);
    ("fig16", "BERT per-kernel trends (vs Ansor)", fig16);
    ("table5", "CRNN performance counters", table5);
    ("ansor", "Ansor case study (Sec 6.2)", ansor_case_study);
    ("table6", "global barrier overhead", table6);
    ("overhead", "compilation overhead (Sec 6.4.1)", compile_overhead);
    ("fig1-a100", "memory-intensive ratio V100 vs A100 (intro)", fig1_a100);
    ("t4", "T4 inference speedups", t4_inference);
    ("cudagraph", "CUDA-Graph launch-overhead-only comparison", cuda_graph);
    ("production", "production-cluster week simulation (Sec 6.3)", production);
    ("memory", "scratch-arena reuse from the memory planner", memory_reuse);
    ("amortization", "JIT compile-cost break-even points", amortization);
    ("exec", "fused execution engine vs reference context", exec_engine);
  ]

let run name =
  match List.find_opt (fun (n, _, _) -> n = name) all with
  | Some (_, _, f) -> f ()
  | None ->
      let names = String.concat ", " (List.map (fun (n, _, _) -> n) all) in
      Astitch_plan.Compile_error.fail ~pass:"experiments"
        Astitch_plan.Compile_error.Unknown_name
        "unknown experiment %S (available: %s)" name names

let run_all () =
  List.iter
    (fun (name, _, f) ->
      Printf.printf ">>> %s\n" name;
      f ())
    all

(* Drop memoized graphs/plans so a benchmark run measures real work. *)
let clear_caches () =
  Hashtbl.reset graph_cache;
  Hashtbl.reset result_cache
