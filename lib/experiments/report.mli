(** Plain-text table rendering for the experiment harness. *)

val table : title:string -> header:string list -> string list list -> string
val print_table : title:string -> header:string list -> string list list -> unit
val f1 : float -> string
val f2 : float -> string
val pct : float -> string
val speedup : float -> string
val us : float -> string
val ms_of_us : float -> string
