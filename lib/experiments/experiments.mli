(** The per-table / per-figure reproduction harness (see DESIGN.md's
    experiment index and EXPERIMENTS.md for paper-vs-measured). *)

open Astitch_plan

type mode = Inference | Training | Amp_inference

val tf : Backend_intf.t
val xla : Backend_intf.t
val tvm : Backend_intf.t
val ansor : Backend_intf.t
val trt : Backend_intf.t
val astitch : Backend_intf.t
val atm : Backend_intf.t
val hdm : Backend_intf.t

val result : Astitch_workloads.Zoo.entry -> mode -> Backend_intf.t ->
  Astitch_runtime.Session.result
(** Memoized compile+profile of one (model, mode, backend) triple. *)

val total_ms : Astitch_workloads.Zoo.entry -> mode -> Backend_intf.t -> float

val fused_exec_default : bool ref
(** Engine the "exec" experiment puts under test (default [true] =
    fused); the CLI's [bench --no-fused] flips it. *)

val all : (string * string * (unit -> unit)) list
(** [(id, description, run)] for every experiment. *)

val run : string -> unit
(** @raise Invalid_argument on unknown ids. *)

val run_all : unit -> unit

val clear_caches : unit -> unit
(** Drop memoized graphs/plans so benchmarks measure real work. *)
