(* Plain-text table rendering for the experiment harness. *)

let hr width = String.make width '-'

let pad width s =
  if String.length s >= width then s
  else s ^ String.make (width - String.length s) ' '

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left
          (fun acc row ->
            Stdlib.max acc (String.length (List.nth row c)))
          0 all)
  in
  let render row =
    String.concat "  " (List.map2 pad widths row)
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * (cols - 1))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  Buffer.add_string buf (render header ^ "\n");
  Buffer.add_string buf (hr total_width ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render row ^ "\n")) rows;
  Buffer.contents buf

let print_table ~title ~header rows =
  print_string (table ~title ~header rows);
  print_newline ()

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let speedup x = Printf.sprintf "%.2fx" x
let us x = Printf.sprintf "%.1fus" x
let ms_of_us x = Printf.sprintf "%.2fms" (x /. 1000.)
